/**
 * @file
 * Regression tests for the DynamicBatcher, the batch-assembly policy
 * extracted from the open-loop frontend. The first two test groups
 * pin down the two historical bugs (see dynamic_batcher.hh): a pump
 * serving at most one idle worker per wake, and the partial-batch
 * timer surviving the dispatch or shedding of the request it was
 * armed for.
 */

#include <gtest/gtest.h>

#include <vector>

#include "server/dynamic_batcher.hh"
#include "sim/event_queue.hh"

namespace krisp
{
namespace
{

/** Test owner: a bank of workers the dispatch hook consumes. */
struct Workers
{
    unsigned idle = 0;
    std::vector<std::vector<BatchRequest>> dispatched;

    DynamicBatcher::IdleProbe
    probe()
    {
        return [this] { return idle > 0; };
    }

    DynamicBatcher::DispatchFn
    take()
    {
        return [this](std::vector<BatchRequest> &&batch) {
            ASSERT_GT(idle, 0u);
            --idle;
            dispatched.push_back(std::move(batch));
        };
    }
};

TEST(DynamicBatcher, SingleWakeServesEveryIdleWorker)
{
    // The historical bug: one maybeDispatch per wake served at most
    // one worker. With two idle workers and a queue deep enough for
    // two full batches, a single pump must dispatch both.
    EventQueue eq;
    Workers w;
    w.idle = 2;
    DynamicBatcherConfig cfg;
    cfg.maxBatch = 4;
    cfg.batchTimeoutNs = 1'000'000;
    DynamicBatcher b(eq, cfg, w.probe(), w.take());

    // Queue 8 requests while no worker is idle... (idle probe is
    // consulted on every add, so stage the queue first)
    w.idle = 0;
    for (std::uint64_t i = 0; i < 8; ++i)
        ASSERT_TRUE(b.add(BatchRequest{i, eq.now(), 0}));
    ASSERT_EQ(b.pendingCount(), 8u);

    // ...then free both workers at once and pump ONCE.
    w.idle = 2;
    b.pump();
    EXPECT_EQ(w.dispatched.size(), 2u);
    EXPECT_EQ(w.dispatched[0].size(), 4u);
    EXPECT_EQ(w.dispatched[1].size(), 4u);
    EXPECT_EQ(b.pendingCount(), 0u);
    EXPECT_EQ(w.idle, 0u);
}

TEST(DynamicBatcher, PumpStopsAtPartialBatchTimeout)
{
    // The multi-dispatch loop must still respect the batching
    // policy: a partial batch inside its timeout window waits even
    // with idle workers to spare.
    EventQueue eq;
    Workers w;
    w.idle = 0;
    DynamicBatcherConfig cfg;
    cfg.maxBatch = 4;
    cfg.batchTimeoutNs = 1'000'000;
    DynamicBatcher b(eq, cfg, w.probe(), w.take());

    for (std::uint64_t i = 0; i < 6; ++i)
        ASSERT_TRUE(b.add(BatchRequest{i, eq.now(), 0}));
    w.idle = 2;
    b.pump();
    // One full batch out; the 2-request remainder waits out its
    // timeout with a timer armed for it.
    EXPECT_EQ(w.dispatched.size(), 1u);
    EXPECT_EQ(b.pendingCount(), 2u);
    EXPECT_EQ(w.idle, 1u);
    EXPECT_TRUE(b.timerArmed());

    // The timer fires at oldest-arrival + timeout and flushes it.
    eq.run();
    EXPECT_EQ(w.dispatched.size(), 2u);
    EXPECT_EQ(w.dispatched[1].size(), 2u);
    EXPECT_FALSE(b.timerArmed());
    EXPECT_EQ(eq.pendingCount(), 0u);
}

TEST(DynamicBatcher, TimerCancelledWhenFrontDispatchedInFullBatch)
{
    // The historical bug: a timer armed for request 0 stayed pending
    // after request 0 left in a full batch, firing spuriously later.
    EventQueue eq;
    Workers w;
    w.idle = 0;
    DynamicBatcherConfig cfg;
    cfg.maxBatch = 4;
    cfg.batchTimeoutNs = 1'000'000;
    DynamicBatcher b(eq, cfg, w.probe(), w.take());

    // A lone request arms the timer for its own deadline.
    ASSERT_TRUE(b.add(BatchRequest{0, eq.now(), 0}));
    ASSERT_TRUE(b.timerArmed());
    const Tick first_deadline = b.armedDeadline();

    // Fill up to a full batch and dispatch it; the queue is empty,
    // so the old timer must be gone from the event queue entirely.
    for (std::uint64_t i = 1; i < 4; ++i)
        ASSERT_TRUE(b.add(BatchRequest{i, eq.now(), 0}));
    w.idle = 1;
    b.pump();
    ASSERT_EQ(w.dispatched.size(), 1u);
    EXPECT_FALSE(b.timerArmed());
    EXPECT_EQ(b.armedDeadline(), 0u);
    EXPECT_EQ(eq.pendingCount(), 0u) << "stale timer left pending";
    EXPECT_EQ(first_deadline, cfg.batchTimeoutNs);
}

TEST(DynamicBatcher, TimerReArmedForNewFrontAfterDispatch)
{
    // When a full batch leaves and a younger request becomes the
    // front, the timer must track the NEW front's deadline, not the
    // departed one's.
    EventQueue eq;
    Workers w;
    w.idle = 0;
    DynamicBatcherConfig cfg;
    cfg.maxBatch = 4;
    cfg.batchTimeoutNs = 1'000'000;
    DynamicBatcher b(eq, cfg, w.probe(), w.take());

    for (std::uint64_t i = 0; i < 4; ++i)
        ASSERT_TRUE(b.add(BatchRequest{i, eq.now(), 0}));
    // A fifth request arrives later; it will be the new front.
    eq.scheduleIn(400'000, [&] {
        ASSERT_TRUE(b.add(BatchRequest{4, eq.now(), 0}));
        w.idle = 2; // one for the full batch now, one spare for 4
        b.pump();
        // Full batch of the four oldest left; the timer now belongs
        // to request 4: arrival 400us + timeout 1ms.
        ASSERT_EQ(w.dispatched.size(), 1u);
        EXPECT_EQ(b.pendingCount(), 1u);
        EXPECT_TRUE(b.timerArmed());
        EXPECT_EQ(b.armedDeadline(), Tick{1'400'000});
    });
    eq.run();
    // The re-armed timer fired and flushed request 4 on time.
    ASSERT_EQ(w.dispatched.size(), 2u);
    ASSERT_EQ(w.dispatched[1].size(), 1u);
    EXPECT_EQ(w.dispatched[1][0].id, 4u);
    EXPECT_EQ(w.dispatched[1][0].dequeued, Tick{1'400'000});
}

TEST(DynamicBatcher, TimeoutAfterShedTracksNewFront)
{
    // A front request shed past its deadline must drag the timer
    // with it: the next pending request's (arrival + timeout), not
    // the shed one's, decides when the partial batch flushes.
    EventQueue eq;
    Workers w;
    w.idle = 0;
    DynamicBatcherConfig cfg;
    cfg.maxBatch = 4;
    cfg.batchTimeoutNs = 500'000;
    cfg.requestDeadlineNs = 1'000'000;
    DynamicBatcher b(eq, cfg, w.probe(), w.take());
    std::vector<std::uint64_t> shed;
    b.setShedHook(
        [&shed](const BatchRequest &r) { shed.push_back(r.id); });

    ASSERT_TRUE(b.add(BatchRequest{0, eq.now(), 0}));
    // Request 1 arrives 900us in; request 0 expires at 1ms with no
    // worker ever freeing up.
    eq.scheduleIn(900'000, [&] {
        ASSERT_TRUE(b.add(BatchRequest{1, eq.now(), 0}));
    });
    eq.scheduleIn(1'100'000, [&] {
        b.pump(); // dispatch opportunity: sheds 0, re-arms for 1
        ASSERT_EQ(shed.size(), 1u);
        EXPECT_EQ(shed[0], 0u);
        EXPECT_EQ(b.pendingCount(), 1u);
        EXPECT_TRUE(b.timerArmed());
        EXPECT_EQ(b.armedDeadline(), Tick{1'400'000});
        w.idle = 1;
    });
    eq.run();
    // Request 1 dispatched by the re-armed timer at ITS deadline.
    ASSERT_EQ(w.dispatched.size(), 1u);
    ASSERT_EQ(w.dispatched[0].size(), 1u);
    EXPECT_EQ(w.dispatched[0][0].id, 1u);
    EXPECT_EQ(w.dispatched[0][0].dequeued, Tick{1'400'000});
    EXPECT_EQ(eq.pendingCount(), 0u);
}

TEST(DynamicBatcher, QueueCapacityRefusesExcess)
{
    EventQueue eq;
    Workers w;
    w.idle = 0;
    DynamicBatcherConfig cfg;
    cfg.maxBatch = 2;
    cfg.queueCapacity = 3;
    cfg.batchTimeoutNs = 1'000'000;
    DynamicBatcher b(eq, cfg, w.probe(), w.take());
    EXPECT_TRUE(b.add(BatchRequest{0, 0, 0}));
    EXPECT_TRUE(b.add(BatchRequest{1, 0, 0}));
    EXPECT_TRUE(b.add(BatchRequest{2, 0, 0}));
    EXPECT_FALSE(b.add(BatchRequest{3, 0, 0}));
    EXPECT_EQ(b.pendingCount(), 3u);
}

TEST(DynamicBatcher, DrainedQueueLeavesNoTimer)
{
    // Destructor hygiene cross-check: after every request leaves by
    // timeout, nothing owned by the batcher lingers on the queue.
    EventQueue eq;
    Workers w;
    w.idle = 4;
    DynamicBatcherConfig cfg;
    cfg.maxBatch = 8;
    cfg.batchTimeoutNs = 250'000;
    {
        DynamicBatcher b(eq, cfg, w.probe(), w.take());
        ASSERT_TRUE(b.add(BatchRequest{0, eq.now(), 0}));
        EXPECT_TRUE(b.timerArmed());
        eq.run();
        EXPECT_EQ(w.dispatched.size(), 1u);
        EXPECT_FALSE(b.timerArmed());
    }
    EXPECT_EQ(eq.pendingCount(), 0u);
}

} // namespace
} // namespace krisp
