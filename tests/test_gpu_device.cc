/**
 * @file
 * Integration-level tests of the GPU device model: command-processor
 * packet handling, barrier semantics, CU-mask enforcement, contention
 * and power accounting.
 */

#include <gtest/gtest.h>

#include "core/mask_allocator.hh"
#include "gpu/gpu_device.hh"
#include "kern/kernel_builder.hh"
#include "kern/timing_model.hh"

namespace krisp
{
namespace
{

const ArchParams arch = ArchParams::mi50();

KernelDescPtr
computeKernel(unsigned wgs, double wg_ns, unsigned sat = 1)
{
    auto d = std::make_shared<KernelDescriptor>();
    d->name = "synthetic";
    d->numWorkgroups = wgs;
    d->wgDurationNs = wg_ns;
    d->saturationWgsPerCu = sat;
    d->bytes = 0;
    return d;
}

struct Fixture
{
    EventQueue eq;
    GpuConfig cfg = GpuConfig::mi50();
    GpuDevice device{eq, cfg};

    Tick
    overheadNs() const
    {
        return cfg.packetProcessNs + cfg.kernelLaunchOverheadNs;
    }
};

TEST(GpuDevice, SingleKernelLatencyMatchesTimingModel)
{
    Fixture fx;
    HsaQueue &q = fx.device.createQueue();
    auto k = computeKernel(240, 100.0);
    Tick done_at = 0;
    auto sig = HsaSignal::create(1);
    sig->waitZero([&] { done_at = fx.eq.now(); });
    q.push(AqlPacket::dispatch(k, sig));
    fx.eq.run();

    const double model =
        timing::computeTimeNs(*k, CuMask::full(arch), arch);
    EXPECT_EQ(done_at,
              fx.overheadNs() + static_cast<Tick>(model));
    EXPECT_EQ(fx.device.stats().kernelsCompleted, 1u);
    EXPECT_TRUE(fx.device.idle());
}

TEST(GpuDevice, BarrierBitSerialisesQueue)
{
    Fixture fx;
    HsaQueue &q = fx.device.createQueue();
    std::vector<Tick> done;
    for (int i = 0; i < 3; ++i) {
        auto sig = HsaSignal::create(1);
        sig->waitZero([&] { done.push_back(fx.eq.now()); });
        q.push(AqlPacket::dispatch(computeKernel(60, 100.0), sig,
                                   0, /*barrier_bit=*/true));
    }
    fx.eq.run();
    ASSERT_EQ(done.size(), 3u);
    // Strictly serialised: each completion at least a kernel apart.
    EXPECT_GT(done[1], done[0]);
    EXPECT_GT(done[2], done[1]);
    EXPECT_GE(done[1] - done[0], 100u);
}

TEST(GpuDevice, NonBarrierKernelsOverlap)
{
    Fixture fx;
    HsaQueue &q = fx.device.createQueue();
    std::vector<Tick> done;
    for (int i = 0; i < 2; ++i) {
        auto sig = HsaSignal::create(1);
        sig->waitZero([&] { done.push_back(fx.eq.now()); });
        q.push(AqlPacket::dispatch(computeKernel(60, 1000.0), sig,
                                   0, /*barrier_bit=*/false));
    }
    fx.eq.run();
    ASSERT_EQ(done.size(), 2u);
    // Overlapping: the second finishes well before 2x the solo time.
    EXPECT_LT(done[1] - done[0],
              static_cast<Tick>(1000));
}

TEST(GpuDevice, QueueCuMaskRestrictsKernels)
{
    Fixture fx;
    HsaQueue &q = fx.device.createQueue();
    fx.device.setQueueCuMask(q.id(), CuMask::firstN(15));
    auto k = computeKernel(600, 10.0);
    Tick done_at = 0;
    auto sig = HsaSignal::create(1);
    sig->waitZero([&] { done_at = fx.eq.now(); });
    q.push(AqlPacket::dispatch(k, sig));
    fx.eq.run();
    const double expect =
        timing::computeTimeNs(*k, CuMask::firstN(15), arch);
    EXPECT_EQ(done_at,
              fx.overheadNs() + static_cast<Tick>(expect));
}

TEST(GpuDevice, TwoQueuesRunConcurrently)
{
    Fixture fx;
    HsaQueue &qa = fx.device.createQueue();
    HsaQueue &qb = fx.device.createQueue();
    // Disjoint masks: no contention at all.
    fx.device.setQueueCuMask(qa.id(), CuMask::firstN(30));
    CuMask high;
    for (unsigned cu = 30; cu < 60; ++cu)
        high.set(cu);
    fx.device.setQueueCuMask(qb.id(), high);

    std::vector<Tick> done(2, 0);
    for (int i = 0; i < 2; ++i) {
        auto sig = HsaSignal::create(1);
        sig->waitZero([&, i] { done[i] = fx.eq.now(); });
        (i == 0 ? qa : qb)
            .push(AqlPacket::dispatch(computeKernel(300, 10.0), sig));
    }
    fx.eq.run();
    // Both finish at the same time: truly parallel.
    EXPECT_EQ(done[0], done[1]);
}

TEST(GpuDevice, SharedCusSlowBothDown)
{
    Fixture fx;
    HsaQueue &qa = fx.device.createQueue();
    HsaQueue &qb = fx.device.createQueue();
    // Both saturating kernels on the full device.
    Tick solo_done = 0;
    {
        EventQueue eq2;
        GpuDevice dev2(eq2, fx.cfg);
        HsaQueue &q2 = dev2.createQueue();
        auto sig = HsaSignal::create(1);
        sig->waitZero([&] { solo_done = eq2.now(); });
        q2.push(AqlPacket::dispatch(computeKernel(2400, 1000.0), sig));
        eq2.run();
    }
    std::vector<Tick> done(2, 0);
    for (int i = 0; i < 2; ++i) {
        auto sig = HsaSignal::create(1);
        sig->waitZero([&, i] { done[i] = fx.eq.now(); });
        (i == 0 ? qa : qb)
            .push(AqlPacket::dispatch(computeKernel(2400, 1000.0),
                                      sig));
    }
    fx.eq.run();
    // Two saturating kernels sharing all CUs take roughly twice the
    // solo time (plus the interference penalty).
    EXPECT_GT(done[0], solo_done + solo_done / 2);
    EXPECT_GT(done[1], solo_done + solo_done / 2);
}

TEST(GpuDevice, LowOccupancyKernelsShareWithoutSlowdown)
{
    // Two kernels that each need only ~12 CUs' worth of capacity can
    // co-run on the full device at solo speed — the MPS-default
    // behaviour for under-utilising models.
    Fixture fx;
    HsaQueue &qa = fx.device.createQueue();
    HsaQueue &qb = fx.device.createQueue();
    Tick solo_done = 0;
    {
        EventQueue eq2;
        GpuDevice dev2(eq2, fx.cfg);
        HsaQueue &q2 = dev2.createQueue();
        auto sig = HsaSignal::create(1);
        sig->waitZero([&] { solo_done = eq2.now(); });
        q2.push(AqlPacket::dispatch(computeKernel(48, 100.0, 4), sig));
        eq2.run();
    }
    std::vector<Tick> done(2, 0);
    for (int i = 0; i < 2; ++i) {
        auto sig = HsaSignal::create(1);
        sig->waitZero([&, i] { done[i] = fx.eq.now(); });
        (i == 0 ? qa : qb)
            .push(AqlPacket::dispatch(computeKernel(48, 100.0, 4),
                                      sig));
    }
    fx.eq.run();
    // Within the small interference penalty of solo latency.
    EXPECT_LT(done[0], solo_done + solo_done / 5);
    EXPECT_LT(done[1], solo_done + solo_done / 5);
}

TEST(GpuDevice, BarrierAndWaitsForDependencies)
{
    Fixture fx;
    HsaQueue &q = fx.device.createQueue();
    auto dep = HsaSignal::create(1);
    auto done = HsaSignal::create(1);
    Tick done_at = 0;
    done->waitZero([&] { done_at = fx.eq.now(); });
    q.push(AqlPacket::barrier({dep}, done));
    fx.eq.scheduleIn(5000, [&] { dep->subtract(1); });
    fx.eq.run();
    EXPECT_GE(done_at, 5000u);
}

TEST(GpuDevice, BarrierWithSatisfiedDepsCompletes)
{
    Fixture fx;
    HsaQueue &q = fx.device.createQueue();
    auto dep = HsaSignal::create(0); // already satisfied
    auto done = HsaSignal::create(1);
    bool fired = false;
    done->waitZero([&] { fired = true; });
    q.push(AqlPacket::barrier({dep}, done));
    fx.eq.run();
    EXPECT_TRUE(fired);
}

TEST(GpuDevice, OnCompleteHookRuns)
{
    Fixture fx;
    HsaQueue &q = fx.device.createQueue();
    bool hook = false;
    AqlPacket pkt =
        AqlPacket::dispatch(computeKernel(60, 10.0), nullptr);
    pkt.onComplete = [&] { hook = true; };
    q.push(std::move(pkt));
    fx.eq.run();
    EXPECT_TRUE(hook);
}

TEST(GpuDevice, ResourceMonitorTracksRunningKernels)
{
    Fixture fx;
    HsaQueue &q = fx.device.createQueue();
    fx.device.setQueueCuMask(q.id(), CuMask::firstN(10));
    q.push(AqlPacket::dispatch(computeKernel(600, 1000.0), nullptr));
    // After dispatch the counters cover exactly the mask.
    fx.eq.run(fx.overheadNs() + 10);
    EXPECT_EQ(fx.device.monitor().residentKernels(), 1u);
    EXPECT_EQ(fx.device.monitor().busyCus(), 10u);
    EXPECT_EQ(fx.device.monitor().kernelsOnCu(0), 1u);
    EXPECT_EQ(fx.device.monitor().kernelsOnCu(10), 0u);
    fx.eq.run();
    EXPECT_EQ(fx.device.monitor().residentKernels(), 0u);
    EXPECT_EQ(fx.device.monitor().busyCus(), 0u);
}

TEST(GpuDevice, KrispAllocatorGeneratesPerKernelMasks)
{
    Fixture fx;
    MaskAllocator alloc(DistributionPolicy::Conserved, 0);
    fx.device.setKrispAllocator(&alloc);
    HsaQueue &q = fx.device.createQueue();
    auto k = computeKernel(600, 10.0);
    Tick done_at = 0;
    auto sig = HsaSignal::create(1);
    sig->waitZero([&] { done_at = fx.eq.now(); });
    q.push(AqlPacket::dispatch(k, sig, /*requested_cus=*/15));
    fx.eq.run();
    EXPECT_EQ(fx.device.stats().krispAllocations, 1u);
    EXPECT_EQ(alloc.stats().requests, 1u);
    // Latency reflects a 15-CU partition plus the allocation stage.
    const double expect =
        timing::computeTimeNs(*k, CuMask::firstN(15), arch);
    EXPECT_EQ(done_at, fx.overheadNs() + fx.cfg.allocLatencyNs +
                           static_cast<Tick>(expect));
}

TEST(GpuDevice, RequestedCusIgnoredWithoutAllocator)
{
    Fixture fx;
    HsaQueue &q = fx.device.createQueue();
    auto k = computeKernel(600, 10.0);
    Tick done_at = 0;
    auto sig = HsaSignal::create(1);
    sig->waitZero([&] { done_at = fx.eq.now(); });
    q.push(AqlPacket::dispatch(k, sig, /*requested_cus=*/15));
    fx.eq.run();
    EXPECT_EQ(fx.device.stats().krispAllocations, 0u);
    const double full =
        timing::computeTimeNs(*k, CuMask::full(arch), arch);
    EXPECT_EQ(done_at, fx.overheadNs() + static_cast<Tick>(full));
}

TEST(GpuDevice, PowerIdleVsBusy)
{
    Fixture fx;
    EXPECT_DOUBLE_EQ(fx.device.power().currentPowerW(),
                     fx.cfg.power.idleW);
    HsaQueue &q = fx.device.createQueue();
    fx.device.setQueueCuMask(q.id(), CuMask::firstN(15)); // one SE
    q.push(AqlPacket::dispatch(computeKernel(1500, 1000.0), nullptr));
    fx.eq.run(fx.overheadNs() + 10);
    const double busy = fx.device.power().currentPowerW();
    EXPECT_NEAR(busy,
                fx.cfg.power.idleW + 15 * fx.cfg.power.cuActiveW +
                    fx.cfg.power.seUncoreW,
                1e-9);
    fx.eq.run();
    EXPECT_DOUBLE_EQ(fx.device.power().currentPowerW(),
                     fx.cfg.power.idleW);
    EXPECT_GT(fx.device.power().energyJoules(), 0.0);
}

TEST(GpuDevice, EnergyIntegratesOverTime)
{
    Fixture fx;
    // Idle for exactly one second.
    fx.eq.schedule(ticksFromSec(1.0), [] {});
    fx.eq.run();
    EXPECT_NEAR(fx.device.power().energyJoules(),
                fx.cfg.power.idleW, 1e-6);
}

TEST(GpuDevice, MemoryBoundKernelUsesBandwidthPower)
{
    Fixture fx;
    HsaQueue &q = fx.device.createQueue();
    auto k = std::make_shared<KernelDescriptor>(
        makeElementwise(arch, 64u << 20, "relu", 1));
    q.push(AqlPacket::dispatch(k, nullptr));
    fx.eq.run(fx.overheadNs() + 10);
    // Full-bandwidth streaming adds close to the max memory power.
    EXPECT_GT(fx.device.power().currentPowerW(),
              fx.cfg.power.idleW + fx.cfg.power.memMaxW * 0.8);
    fx.eq.run();
}

TEST(GpuDevice, ManyKernelsStatsConsistent)
{
    Fixture fx;
    HsaQueue &q = fx.device.createQueue();
    const int n = 50;
    auto sig = HsaSignal::create(n);
    bool all_done = false;
    sig->waitZero([&] { all_done = true; });
    for (int i = 0; i < n; ++i)
        q.push(AqlPacket::dispatch(computeKernel(60, 50.0), sig));
    fx.eq.run();
    EXPECT_TRUE(all_done);
    EXPECT_EQ(fx.device.stats().kernelsDispatched,
              static_cast<std::uint64_t>(n));
    EXPECT_EQ(fx.device.stats().kernelsCompleted,
              static_cast<std::uint64_t>(n));
    EXPECT_EQ(fx.device.stats().packetsProcessed,
              static_cast<std::uint64_t>(n));
    EXPECT_GT(fx.device.stats().kernelLatencyNs.mean(), 0.0);
}

TEST(GpuDevice, QueueLimitEnforced)
{
    Fixture fx;
    for (std::size_t i = 0; i < fx.cfg.maxQueues; ++i)
        fx.device.createQueue();
    EXPECT_EXIT(fx.device.createQueue(),
                ::testing::ExitedWithCode(1), "queue limit");
}

TEST(GpuDeviceDeath, EmptyQueueMaskRejected)
{
    Fixture fx;
    HsaQueue &q = fx.device.createQueue();
    EXPECT_EXIT(fx.device.setQueueCuMask(q.id(), CuMask()),
                ::testing::ExitedWithCode(1), "empty");
}

} // namespace
} // namespace krisp
