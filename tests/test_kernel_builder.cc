/**
 * @file
 * Unit tests for kernel descriptors and the layer-shape builders.
 */

#include <gtest/gtest.h>

#include <set>

#include "kern/kernel_builder.hh"

namespace krisp
{
namespace
{

const ArchParams arch = ArchParams::mi50();

TEST(ConvShape, OutputSize)
{
    ConvShape s{32, 3, 64, 224, 7, 2, 1, 3};
    EXPECT_EQ(s.outSize(), 112u);
    ConvShape same{1, 8, 8, 14, 3, 1, 1, 1};
    EXPECT_EQ(same.outSize(), 14u);
    ConvShape one{1, 8, 8, 14, 1, 1, 1, 0};
    EXPECT_EQ(one.outSize(), 14u);
    ConvShape alex{32, 3, 96, 224, 11, 4, 1, 2};
    EXPECT_EQ(alex.outSize(), 55u);
}

TEST(ConvShape, FlopsAccounting)
{
    ConvShape s{1, 16, 32, 8, 3, 1, 1, 1};
    // 2 * B * outC * inC * out^2 * k^2
    EXPECT_DOUBLE_EQ(s.flops(), 2.0 * 1 * 32 * 16 * 64 * 9);
}

TEST(ConvShape, GroupsReduceFlops)
{
    ConvShape dense{1, 32, 32, 8, 3, 1, 1, 1};
    ConvShape grouped = dense;
    grouped.groups = 4;
    EXPECT_DOUBLE_EQ(grouped.flops(), dense.flops() / 4.0);
}

TEST(KernelBuilder, ConvProducesPositiveWork)
{
    const auto d = makeConv(arch, KernelClass::WinogradConv,
                            {32, 64, 64, 56, 3, 1, 1, 1});
    EXPECT_GT(d.numWorkgroups, 0u);
    EXPECT_GT(d.wgDurationNs, 0.0);
    EXPECT_GT(d.bytes, 0.0);
    EXPECT_GT(d.inputBytes, 0.0);
    EXPECT_EQ(d.klass, KernelClass::WinogradConv);
}

TEST(KernelBuilder, Sp3AsmSaturatesWithOneWg)
{
    const auto d = makeConv(arch, KernelClass::Sp3AsmConv,
                            {32, 256, 256, 28, 3, 1, 1, 1});
    EXPECT_EQ(d.saturationWgsPerCu, 1u);
}

TEST(KernelBuilder, WinogradReducesFlops)
{
    const ConvShape s{32, 64, 64, 56, 3, 1, 1, 1};
    const auto wino = makeConv(arch, KernelClass::WinogradConv, s);
    const auto sp3 = makeConv(arch, KernelClass::Sp3AsmConv, s);
    // Same shape: Winograd carries 2.25x fewer FLOPs. Compare total
    // compute work = wgs * wgDuration * efficiency-adjusted rate.
    const double wino_flops = wino.numWorkgroups * wino.wgDurationNs *
                              arch.cuFlopsPerNs * 0.78;
    const double sp3_flops = sp3.numWorkgroups * sp3.wgDurationNs *
                             arch.cuFlopsPerNs * 0.88;
    EXPECT_NEAR(sp3_flops / wino_flops, 2.25, 0.01);
}

TEST(KernelBuilder, SmallKConvIsTrafficHeavy)
{
    // squeeze-style conv: tiny accumulation depth -> poor reuse.
    const auto small_k = makeConv(arch, KernelClass::ImplicitGemmConv,
                                  {32, 16, 64, 55, 1, 1, 1, 0});
    const ConvShape s{32, 16, 64, 55, 1, 1, 1, 0};
    EXPECT_GT(small_k.bytes, s.ioBytes()); // amplified beyond ideal
}

TEST(KernelBuilder, GroupedConvExemptFromSmallKPath)
{
    // Same operand footprint, grouped -> no small-K amplification.
    const ConvShape g{32, 1024, 1024, 14, 3, 1, 32, 1};
    const auto d = makeConv(arch, KernelClass::ImplicitGemmConv, g);
    EXPECT_NEAR(d.bytes, g.ioBytes() * 1.5, g.ioBytes() * 0.01);
}

TEST(KernelBuilder, GemmTileCounts)
{
    // Fat GEMM: square 64x64 macro tiles, no split-K at K=1024.
    const auto fat = makeGemm(arch, 1024, 1024, 1024);
    EXPECT_EQ(fat.numWorkgroups, 16u * 16u);
    // Deep K: split-K kicks in above 1024.
    const auto deep = makeGemm(arch, 1024, 1024, 2048);
    EXPECT_EQ(deep.numWorkgroups, 16u * 16u * 3u);
    // Skinny GEMM: wide 128 tiles.
    const auto skinny = makeGemm(arch, 256, 768, 768);
    EXPECT_EQ(skinny.numWorkgroups, 4u * 6u);
    // Skinny + wide N: 256 tiles.
    const auto ffn = makeGemm(arch, 256, 3072, 768);
    EXPECT_EQ(ffn.numWorkgroups, 4u * 12u);
}

TEST(KernelBuilder, GemmSplitKForDeepAccumulation)
{
    const auto d = makeGemm(arch, 256, 768, 3072);
    // K=3072 -> split-K factor 4 over 64x128 tiles.
    EXPECT_EQ(d.numWorkgroups, 4u * 6u * 4u);
}

TEST(KernelBuilder, GemmFlopsConserved)
{
    const auto d = makeGemm(arch, 512, 512, 512);
    const double flops = d.numWorkgroups * d.wgDurationNs *
                         arch.cuFlopsPerNs * 0.82;
    EXPECT_NEAR(flops, 2.0 * 512 * 512 * 512, flops * 0.01);
}

TEST(KernelBuilder, BatchedGemmScalesWithBatch)
{
    const auto one = makeBatchedGemm(arch, 64, 64, 64, 1);
    const auto many = makeBatchedGemm(arch, 64, 64, 64, 384);
    EXPECT_EQ(many.numWorkgroups, 384u * one.numWorkgroups);
    EXPECT_NEAR(many.bytes, 384.0 * one.bytes, one.bytes);
}

TEST(KernelBuilder, ElementwiseMemoryBound)
{
    const auto d = makeElementwise(arch, 1 << 20, "relu", 1);
    // Streaming op: bytes ~ 2 tensors x 4 B x elems.
    EXPECT_NEAR(d.bytes, 2.0 * 4.0 * (1 << 20), 1.0);
    EXPECT_GT(d.issueFactor, 1.0);
}

TEST(KernelBuilder, ElementwiseNameCarriesOp)
{
    const auto d = makeElementwise(arch, 1024, "gelu", 1);
    EXPECT_NE(d.name.find("gelu"), std::string::npos);
}

TEST(KernelBuilder, ReductionWgCap)
{
    const auto d = makeReduction(arch, std::uint64_t(1) << 32);
    EXPECT_LE(d.numWorkgroups, 960u);
}

TEST(KernelBuilder, SoftmaxRowsAreWorkgroups)
{
    const auto d = makeSoftmax(arch, 4096, 128);
    EXPECT_EQ(d.numWorkgroups, 4096u);
    EXPECT_EQ(d.wgThreads, 128u);
    const auto wide = makeSoftmax(arch, 16, 5000);
    EXPECT_EQ(wide.wgThreads, 1024u); // clamped
}

TEST(KernelBuilder, GatherHasLowIssueFactor)
{
    const auto d = makeGather(arch, 4096, 128);
    EXPECT_LT(d.issueFactor, 1.0); // random access
}

TEST(KernelBuilder, PoolingAndTranspose)
{
    const auto p = makePooling(arch, 32, 64, 27, 3);
    EXPECT_GT(p.numWorkgroups, 0u);
    const auto t = makeTranspose(arch, 1 << 20);
    EXPECT_GT(t.bytes, 4.0 * (1 << 20)); // read + write, amplified
}

TEST(KernelDescriptor, ProfileKeyIdentifiesGeometry)
{
    const auto a = makeGemm(arch, 256, 768, 768);
    const auto b = makeGemm(arch, 256, 768, 768);
    const auto c = makeGemm(arch, 512, 768, 768);
    EXPECT_EQ(a.profileKey(), b.profileKey());
    EXPECT_NE(a.profileKey(), c.profileKey());
}

TEST(KernelDescriptor, TotalThreads)
{
    KernelDescriptor d;
    d.numWorkgroups = 100;
    d.wgThreads = 256;
    EXPECT_EQ(d.totalThreads(), 25600u);
}

TEST(KernelClassNames, AllDistinct)
{
    std::set<std::string> names;
    for (int i = 0; i < numKernelClasses; ++i)
        names.insert(kernelClassName(kernelClassAt(i)));
    EXPECT_EQ(names.size(),
              static_cast<std::size_t>(numKernelClasses));
}

TEST(KernelClassNames, PaperKernelsPresent)
{
    // Fig. 6 calls out these library kernels by name.
    EXPECT_STREQ(kernelClassName(KernelClass::ConvFft),
                 "MIOpenConvFFT_fwd_in");
    EXPECT_STREQ(kernelClassName(KernelClass::Sp3AsmConv),
                 "miopenSp3AsmConv_v21_1_2");
    EXPECT_STREQ(kernelClassName(KernelClass::ImplicitGemmConv),
                 "gfx9_f3x2_fp32_stride1_group");
}

/** Every class builds a valid conv descriptor where applicable. */
class ConvClassTest : public ::testing::TestWithParam<KernelClass>
{
};

TEST_P(ConvClassTest, ValidDescriptor)
{
    const auto d = makeConv(arch, GetParam(),
                            {16, 32, 64, 28, 3, 1, 1, 1});
    EXPECT_GT(d.numWorkgroups, 0u);
    EXPECT_GT(d.wgDurationNs, 0.0);
    EXPECT_GE(d.saturationWgsPerCu, 1u);
    EXPECT_GT(d.bytes, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllConvClasses, ConvClassTest,
                         ::testing::Values(
                             KernelClass::ImplicitGemmConv,
                             KernelClass::Sp3AsmConv,
                             KernelClass::ConvFft,
                             KernelClass::WinogradConv,
                             KernelClass::DepthwiseConv));

/** Batch scaling property: work scales linearly with batch. */
class BatchScalingTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BatchScalingTest, ConvWorkScalesWithBatch)
{
    const unsigned b = GetParam();
    const auto one = makeConv(arch, KernelClass::WinogradConv,
                              {1, 64, 64, 56, 3, 1, 1, 1});
    const auto many = makeConv(arch, KernelClass::WinogradConv,
                               {b, 64, 64, 56, 3, 1, 1, 1});
    const double work_one = one.numWorkgroups * one.wgDurationNs;
    const double work_many = many.numWorkgroups * many.wgDurationNs;
    EXPECT_NEAR(work_many / work_one, b, 0.05 * b);
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchScalingTest,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u));

TEST(KernelBuilderDeath, InvalidInputs)
{
    EXPECT_EXIT(makeGemm(arch, 0, 1, 1),
                ::testing::ExitedWithCode(1), "non-zero");
    EXPECT_EXIT(makeElementwise(arch, 0),
                ::testing::ExitedWithCode(1), "zero");
    EXPECT_EXIT(makeConv(arch, KernelClass::Gemm,
                         {1, 1, 1, 8, 3, 1, 1, 1}),
                ::testing::ExitedWithCode(1), "non-convolution");
    ConvShape bad{1, 1, 1, 8, 3, 0, 1, 1};
    EXPECT_EXIT(bad.outSize(), ::testing::ExitedWithCode(1),
                "stride");
}

} // namespace
} // namespace krisp
