/**
 * @file
 * Tests of the fault-injection and failure-handling subsystem:
 * deterministic per-site fault streams, ioctl retry/backoff with the
 * static-mask fallback, the GPU hang watchdog, lost completion
 * signals, server-side deadlines and request watchdogs, and the
 * bit-identity of zero-fault runs.
 */

#include <gtest/gtest.h>

#include "core/krisp_runtime.hh"
#include "fault/fault_injector.hh"
#include "gpu/gpu_device.hh"
#include "kern/kernel_builder.hh"
#include "server/inference_server.hh"
#include "sim/event_queue.hh"

namespace krisp
{
namespace
{

const ArchParams arch = ArchParams::mi50();

struct Fixture
{
    EventQueue eq;
    GpuConfig cfg = GpuConfig::mi50();
    GpuDevice device{eq, cfg};
    HipRuntime hip{eq, device};
    PerfDatabase db;
    MaskAllocator alloc{DistributionPolicy::Conserved, 0};

    KernelDescPtr
    kernel(unsigned wgs = 600, double wg_ns = 50.0)
    {
        auto d = std::make_shared<KernelDescriptor>();
        d->name = "k";
        d->numWorkgroups = wgs;
        d->wgDurationNs = wg_ns;
        d->saturationWgsPerCu = 2;
        return d;
    }

    /** Run a sequence through a KrispRuntime; return wall ticks. */
    Tick
    runSequence(KrispRuntime &krisp, Stream &stream,
                const std::vector<KernelDescPtr> &seq)
    {
        const Tick start = eq.now();
        auto sig =
            HsaSignal::create(static_cast<std::int64_t>(seq.size()));
        Tick end = start;
        sig->waitZero([&] { end = eq.now(); });
        for (const auto &k : seq)
            krisp.launch(stream, k, sig);
        eq.run();
        return end - start;
    }
};

// ---- FaultPlan / FaultInjector units ----------------------------

TEST(FaultPlan, EnabledSemantics)
{
    EXPECT_FALSE(FaultPlan::none().enabled());
    EXPECT_FALSE(FaultPlan{}.enabled());
    EXPECT_TRUE(FaultPlan::uniform(0.1).enabled());

    FaultPlan burst_only;
    burst_only.ioctlFailBurst = 1;
    EXPECT_TRUE(burst_only.enabled());

    // A zero-probability uniform plan is the do-nothing plan.
    EXPECT_FALSE(FaultPlan::uniform(0.0).enabled());
}

TEST(FaultInjector, DisarmedInjectorInjectsNothing)
{
    FaultInjector inj(FaultPlan::none());
    EXPECT_FALSE(inj.armed());
    for (int i = 0; i < 32; ++i) {
        const auto f = inj.kernelFault("k");
        EXPECT_FALSE(f.hang);
        EXPECT_DOUBLE_EQ(f.slowFactor, 1.0);
        EXPECT_FALSE(inj.ioctlFails());
        EXPECT_EQ(inj.ioctlLatency(12345), 12345u);
        EXPECT_FALSE(inj.signalLost());
        EXPECT_EQ(inj.preprocessStall(), 0u);
    }
    const FaultStats s = inj.stats();
    EXPECT_EQ(s.kernelHangs, 0u);
    EXPECT_EQ(s.ioctlFailures, 0u);
    EXPECT_EQ(s.signalLosses, 0u);
    EXPECT_EQ(s.preprocessStalls, 0u);
}

TEST(FaultInjector, IdenticalPlansDrawIdenticalSequences)
{
    const FaultPlan plan = FaultPlan::uniform(0.35, 7);
    FaultInjector a(plan);
    FaultInjector b(plan);
    for (int i = 0; i < 200; ++i) {
        const auto fa = a.kernelFault("k");
        const auto fb = b.kernelFault("k");
        EXPECT_EQ(fa.hang, fb.hang);
        EXPECT_DOUBLE_EQ(fa.slowFactor, fb.slowFactor);
        EXPECT_EQ(a.ioctlFails(), b.ioctlFails());
        EXPECT_EQ(a.ioctlLatency(1000), b.ioctlLatency(1000));
        EXPECT_EQ(a.signalLost(), b.signalLost());
        EXPECT_EQ(a.preprocessStall(), b.preprocessStall());
    }
    const FaultStats sa = a.stats();
    const FaultStats sb = b.stats();
    EXPECT_EQ(sa.kernelHangs, sb.kernelHangs);
    EXPECT_EQ(sa.ioctlFailures, sb.ioctlFailures);
    EXPECT_EQ(sa.signalLosses, sb.signalLosses);

    // A different seed produces a different fault sequence.
    FaultInjector c(FaultPlan::uniform(0.35, 8));
    std::uint64_t diff = 0;
    FaultInjector a2(plan);
    for (int i = 0; i < 200; ++i)
        diff += a2.signalLost() != c.signalLost() ? 1 : 0;
    EXPECT_GT(diff, 0u);
}

TEST(FaultInjector, SitesDrawFromIndependentStreams)
{
    // Interleaving draws at other sites must not shift the ioctl
    // stream: site independence is what keeps fault sequences stable
    // when unrelated components are added to a run.
    const FaultPlan plan = FaultPlan::uniform(0.35, 21);
    FaultInjector interleaved(plan);
    FaultInjector ioctl_only(plan);
    for (int i = 0; i < 100; ++i) {
        interleaved.kernelFault("k");
        interleaved.signalLost();
        interleaved.preprocessStall();
        EXPECT_EQ(interleaved.ioctlFails(), ioctl_only.ioctlFails());
    }
}

TEST(FaultInjector, BurstFailsFirstAttemptsDeterministically)
{
    FaultPlan plan;
    plan.ioctlFailBurst = 3;
    FaultInjector inj(plan);
    EXPECT_TRUE(inj.armed());
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(inj.ioctlFails());
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(inj.ioctlFails());
    EXPECT_EQ(inj.stats().ioctlFailures, 3u);
}

TEST(FaultInjector, CountersAndTracesLandInObsContext)
{
    ObsContext obs;
    FaultInjector inj(FaultPlan::uniform(1.0), &obs);
    inj.kernelFault("conv1");
    inj.ioctlFails();
    inj.signalLost();
    inj.preprocessStall();
    inj.noteWatchdogKill(4, "conv1");

    EXPECT_EQ(obs.metrics.counter("fault.kernel_hangs").value(), 1u);
    EXPECT_EQ(obs.metrics.counter("fault.ioctl_failures").value(), 1u);
    EXPECT_EQ(obs.metrics.counter("fault.signal_losses").value(), 1u);
    EXPECT_EQ(obs.metrics.counter("fault.preprocess_stalls").value(),
              1u);
    EXPECT_EQ(obs.metrics.counter("fault.watchdog_kills").value(), 1u);

    std::size_t injects = 0, recoveries = 0;
    for (const auto &rec : obs.trace.records()) {
        injects += rec.kind == TraceEventKind::FaultInject ? 1 : 0;
        recoveries +=
            rec.kind == TraceEventKind::RecoveryAction ? 1 : 0;
    }
    EXPECT_EQ(injects, 4u);
    EXPECT_EQ(recoveries, 1u);
}

TEST(FaultInjectorDeath, InvalidPlansRejected)
{
    FaultPlan bad = FaultPlan::none();
    bad.kernelHangProb = 1.5;
    EXPECT_EXIT({ FaultInjector inj(bad); },
                ::testing::ExitedWithCode(1), "out of");
    bad = FaultPlan::none();
    bad.kernelSlowProb = 0.1;
    bad.kernelSlowFactor = 0.5;
    EXPECT_EXIT({ FaultInjector inj(bad); },
                ::testing::ExitedWithCode(1), "kernelSlowFactor");
}

// ---- ioctl failure handling: retry, backoff, fallback -----------

TEST(FaultHandling, IoctlFailureRetriesAndSucceeds)
{
    Fixture fx;
    FaultPlan plan;
    plan.ioctlFailBurst = 2; // < default maxAttempts of 4
    FaultInjector inj(plan);
    fx.hip.attachFault(&inj);

    FixedSizer sizer(15);
    KrispRuntime krisp(fx.hip, sizer, fx.alloc,
                       EnforcementMode::Emulated);
    Stream &s = fx.hip.createStream();
    const Tick wall = fx.runSequence(krisp, s, {fx.kernel()});
    EXPECT_GT(wall, 0u); // the request completed

    EXPECT_EQ(krisp.stats().reconfigRetries, 2u);
    EXPECT_EQ(krisp.stats().reconfigFallbacks, 0u);
    EXPECT_EQ(krisp.stats().emulatedReconfigs, 1u);
    EXPECT_EQ(inj.stats().ioctlFailures, 2u);
    EXPECT_EQ(fx.hip.ioctlService().failed(), 2u);
    EXPECT_EQ(fx.hip.ioctlService().completed(), 1u);
    // The retried reconfiguration eventually landed.
    EXPECT_EQ(s.hsaQueue().cuMask().count(), 15u);
    EXPECT_EQ(fx.device.stats().kernelsCompleted, 1u);

    // Retries pay backoff: the faulty run is strictly slower than a
    // clean one.
    Fixture clean;
    KrispRuntime krisp2(clean.hip, sizer, clean.alloc,
                        EnforcementMode::Emulated);
    Stream &s2 = clean.hip.createStream();
    const Tick clean_wall =
        clean.runSequence(krisp2, s2, {clean.kernel()});
    EXPECT_GT(wall, clean_wall);
}

TEST(FaultHandling, ExhaustedRetriesFallBackToStaticMask)
{
    Fixture fx;
    FaultPlan plan;
    plan.ioctlFailBurst = 100; // every attempt fails
    FaultInjector inj(plan);
    fx.hip.attachFault(&inj);

    FixedSizer sizer(15);
    KrispRuntime krisp(fx.hip, sizer, fx.alloc,
                       EnforcementMode::Emulated);
    Stream &s = fx.hip.createStream();
    const unsigned mask_before = s.hsaQueue().cuMask().count();
    const Tick wall = fx.runSequence(krisp, s, {fx.kernel()});

    // The request still completes — degraded to the queue's static
    // mask instead of the per-kernel right-size.
    EXPECT_GT(wall, 0u);
    EXPECT_EQ(fx.device.stats().kernelsCompleted, 1u);
    EXPECT_EQ(krisp.stats().reconfigFallbacks, 1u);
    EXPECT_EQ(krisp.stats().reconfigRetries, 3u); // 4 attempts total
    EXPECT_EQ(krisp.stats().emulatedReconfigs, 0u);
    EXPECT_EQ(s.hsaQueue().cuMask().count(), mask_before);
}

TEST(FaultHandling, RetryPolicyBoundsAttempts)
{
    Fixture fx;
    FaultPlan plan;
    plan.ioctlFailBurst = 100;
    FaultInjector inj(plan);
    fx.hip.attachFault(&inj);

    FixedSizer sizer(15);
    KrispRuntime krisp(fx.hip, sizer, fx.alloc,
                       EnforcementMode::Emulated);
    krisp.setIoctlRetryPolicy({2, 10'000, 2.0});
    Stream &s = fx.hip.createStream();
    fx.runSequence(krisp, s, {fx.kernel()});
    EXPECT_EQ(krisp.stats().reconfigRetries, 1u);
    EXPECT_EQ(krisp.stats().reconfigFallbacks, 1u);
    EXPECT_EQ(inj.stats().ioctlFailures, 2u);
}

TEST(FaultHandlingDeath, InvalidRetryPolicyRejected)
{
    Fixture fx;
    FixedSizer sizer(15);
    KrispRuntime krisp(fx.hip, sizer, fx.alloc,
                       EnforcementMode::Emulated);
    EXPECT_EXIT(krisp.setIoctlRetryPolicy({0, 10'000, 2.0}),
                ::testing::ExitedWithCode(1), "maxAttempts");
}

// ---- hung kernels and the GPU watchdog --------------------------

TEST(FaultHandling, HungKernelReclaimedByWatchdog)
{
    Fixture fx;
    FaultPlan plan;
    plan.kernelHangProb = 1.0;
    plan.watchdogTimeoutNs = ticksFromMs(2.0);
    FaultInjector inj(plan);
    fx.hip.attachFault(&inj);

    Stream &s = fx.hip.createStream();
    auto sig = HsaSignal::create(1);
    bool done = false;
    Tick done_at = 0;
    sig->waitZero([&] {
        done = true;
        done_at = fx.eq.now();
    });
    s.launchWithSignal(fx.kernel(), sig);
    fx.eq.run();

    // The hang costs the watchdog budget, not the experiment.
    EXPECT_TRUE(done);
    EXPECT_GE(done_at, plan.watchdogTimeoutNs);
    EXPECT_EQ(fx.device.stats().watchdogKills, 1u);
    EXPECT_EQ(inj.stats().kernelHangs, 1u);
    EXPECT_EQ(inj.stats().watchdogKills, 1u);
}

TEST(FaultHandling, WatchdogDisabledLeavesHangPending)
{
    Fixture fx;
    FaultPlan plan;
    plan.kernelHangProb = 1.0;
    plan.watchdogTimeoutNs = 0;
    FaultInjector inj(plan);
    fx.hip.attachFault(&inj);

    Stream &s = fx.hip.createStream();
    auto sig = HsaSignal::create(1);
    bool done = false;
    sig->waitZero([&] { done = true; });
    s.launchWithSignal(fx.kernel(), sig);
    fx.eq.run();

    // Without the watchdog the hung kernel never retires: the event
    // queue simply drains with the completion still outstanding.
    EXPECT_FALSE(done);
    EXPECT_EQ(fx.device.stats().watchdogKills, 0u);
}

TEST(FaultHandling, LostCompletionSignalDetected)
{
    Fixture fx;
    FaultPlan plan;
    plan.signalLossProb = 1.0;
    FaultInjector inj(plan);
    fx.hip.attachFault(&inj);

    Stream &s = fx.hip.createStream();
    auto sig = HsaSignal::create(1);
    bool done = false;
    sig->waitZero([&] { done = true; });
    s.launchWithSignal(fx.kernel(), sig);
    fx.eq.run();

    // The kernel retired but its completion decrement was swallowed;
    // recovery from this is the server watchdog's job.
    EXPECT_FALSE(done);
    EXPECT_EQ(fx.device.stats().kernelsCompleted, 1u);
    EXPECT_EQ(inj.stats().signalLosses, 1u);
    EXPECT_EQ(sig->lostDecrements(), 1u);
    EXPECT_EQ(sig->value(), 1);
}

// ---- server-level handling: deadlines, watchdog, determinism ----

TEST(FaultServer, DeadlineShedsStalledRequests)
{
    ObsContext obs;
    ServerConfig cfg;
    cfg.workerModels = {"squeezenet"};
    cfg.batch = 4;
    cfg.warmupRequests = 1;
    cfg.measuredRequests = 8;
    cfg.requestDeadlineNs = ticksFromMs(30.0);
    cfg.faults.stallProb = 0.4;
    cfg.faults.stallNs = ticksFromMs(50.0);
    cfg.obs = &obs;

    const ServerResult r = InferenceServer(cfg).run();

    // Stalled requests blow the deadline and are shed; the rest
    // complete and the experiment finishes.
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.completed, 8u);
    EXPECT_GE(r.deadlineMisses, 1u);
    EXPECT_DOUBLE_EQ(
        obs.metrics.gauge("server.deadline_misses").value(),
        static_cast<double>(r.deadlineMisses));
    EXPECT_GE(obs.metrics.counter("fault.preprocess_stalls").value(),
              r.deadlineMisses);

    std::size_t drops = 0;
    for (const auto &rec : obs.trace.records())
        drops += rec.kind == TraceEventKind::RequestDrop ? 1 : 0;
    EXPECT_GE(drops, r.deadlineMisses);
}

TEST(FaultServer, WatchdogFailsHungRequestsExperimentFinishes)
{
    ObsContext obs;
    ServerConfig cfg;
    cfg.workerModels = {"squeezenet"};
    cfg.batch = 4;
    cfg.warmupRequests = 1;
    cfg.measuredRequests = 10;
    // squeezenet runs ~90 kernels per request, so a per-kernel hang
    // probability of 0.002 wedges roughly one request in six — any
    // hang (cleared by the 20 ms GPU watchdog) blows the 15 ms
    // request budget, while fault-free requests finish well inside
    // it.
    cfg.requestTimeoutNs = ticksFromMs(15.0);
    cfg.faults.kernelHangProb = 0.002;
    cfg.faults.watchdogTimeoutNs = ticksFromMs(20.0);
    cfg.obs = &obs;

    const ServerResult r = InferenceServer(cfg).run();

    // A hang wedges only its own request: the server watchdog fails
    // it, the GPU watchdog reclaims the CUs, and the closed loop
    // still reaches its measured-request quota.
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.completed, 10u);
    EXPECT_GE(r.failedRequests, 1u);
    EXPECT_GT(obs.metrics.counter("fault.kernel_hangs").value(), 0u);
    EXPECT_GT(obs.metrics.gauge("gpu.watchdog_kills").value(), 0.0);
    EXPECT_DOUBLE_EQ(
        obs.metrics.gauge("server.failed_requests").value(),
        static_cast<double>(r.failedRequests));
}

TEST(FaultServer, FaultRunsAreDeterministic)
{
    ServerConfig cfg;
    cfg.workerModels = {"squeezenet", "squeezenet"};
    cfg.batch = 4;
    cfg.policy = PartitionPolicy::KrispOversubscribed;
    cfg.enforcement = EnforcementMode::Emulated;
    cfg.warmupRequests = 1;
    cfg.measuredRequests = 3;
    cfg.requestDeadlineNs = ticksFromMs(60.0);
    cfg.requestTimeoutNs = ticksFromMs(80.0);
    cfg.faults = FaultPlan::uniform(0.02);
    cfg.faults.kernelHangProb = 0.002;
    cfg.faults.watchdogTimeoutNs = ticksFromMs(20.0);

    ObsContext oa, ob;
    ServerConfig ca = cfg, cb = cfg;
    ca.obs = &oa;
    cb.obs = &ob;
    const ServerResult ra = InferenceServer(ca).run();
    const ServerResult rb = InferenceServer(cb).run();

    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_EQ(ra.deadlineMisses, rb.deadlineMisses);
    EXPECT_EQ(ra.failedRequests, rb.failedRequests);
    EXPECT_DOUBLE_EQ(ra.totalRps, rb.totalRps);
    // Byte-identical metrics and traces: faults draw only from their
    // seeded streams in simulated time.
    EXPECT_EQ(oa.metrics.toJson(), ob.metrics.toJson());
    EXPECT_EQ(oa.trace.toChromeJson(), ob.trace.toChromeJson());
}

TEST(FaultServer, ZeroFaultPlanIsBitIdentical)
{
    ServerConfig cfg;
    cfg.workerModels = {"squeezenet", "squeezenet"};
    cfg.batch = 4;
    cfg.policy = PartitionPolicy::KrispOversubscribed;
    cfg.enforcement = EnforcementMode::Emulated;
    cfg.warmupRequests = 1;
    cfg.measuredRequests = 5;

    // One run with the default config, one with an explicit zero-
    // fault plan under a different fault seed: a disabled plan never
    // instantiates the fault layer, so both runs must be identical.
    ObsContext oa, ob;
    ServerConfig ca = cfg, cb = cfg;
    ca.obs = &oa;
    cb.obs = &ob;
    cb.faults = FaultPlan::none();
    cb.faults.seed = 0xdeadbeefULL;
    const ServerResult ra = InferenceServer(ca).run();
    const ServerResult rb = InferenceServer(cb).run();

    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_DOUBLE_EQ(ra.totalRps, rb.totalRps);
    EXPECT_DOUBLE_EQ(ra.maxP95Ms, rb.maxP95Ms);
    EXPECT_EQ(oa.metrics.toJson(), ob.metrics.toJson());
    EXPECT_EQ(oa.trace.toChromeJson(), ob.trace.toChromeJson());
}

} // namespace
} // namespace krisp
