/**
 * @file
 * Tests for the kernel trace hook and cross-cutting conservation
 * properties of the device timing model.
 */

#include <gtest/gtest.h>

#include "core/krisp_runtime.hh"
#include "gpu/gpu_device.hh"
#include "kern/kernel_builder.hh"
#include "models/model_zoo.hh"
#include "sim/event_queue.hh"

namespace krisp
{
namespace
{

const GpuConfig gpu = GpuConfig::mi50();

KernelDescPtr
computeKernel(unsigned wgs, double wg_ns)
{
    auto d = std::make_shared<KernelDescriptor>();
    d->name = "traced";
    d->numWorkgroups = wgs;
    d->wgDurationNs = wg_ns;
    d->saturationWgsPerCu = 1;
    return d;
}

TEST(Trace, EventPerKernelWithConsistentTimestamps)
{
    EventQueue eq;
    GpuDevice device(eq, gpu);
    std::vector<KernelTraceEvent> events;
    device.setTraceFn([&](const KernelTraceEvent &ev) {
        events.push_back(ev);
    });
    HsaQueue &q = device.createQueue();
    for (int i = 0; i < 5; ++i)
        q.push(AqlPacket::dispatch(computeKernel(60, 100.0), nullptr));
    eq.run();

    ASSERT_EQ(events.size(), 5u);
    for (const auto &ev : events) {
        EXPECT_EQ(ev.name, "traced");
        EXPECT_EQ(ev.queue, 0u);
        EXPECT_LE(ev.dispatchTick, ev.startTick);
        EXPECT_LT(ev.startTick, ev.endTick);
        EXPECT_EQ(ev.startTick - ev.dispatchTick,
                  gpu.kernelLaunchOverheadNs);
        EXPECT_EQ(ev.mask.count(), 60u);
    }
    // Distinct, increasing kernel ids.
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_GT(events[i].id, events[i - 1].id);
}

TEST(Trace, MaskReflectsKrispGrant)
{
    EventQueue eq;
    GpuDevice device(eq, gpu);
    MaskAllocator alloc(DistributionPolicy::Conserved, 0);
    device.setKrispAllocator(&alloc);
    KernelTraceEvent last;
    device.setTraceFn(
        [&](const KernelTraceEvent &ev) { last = ev; });
    HsaQueue &q = device.createQueue();
    q.push(AqlPacket::dispatch(computeKernel(600, 10.0), nullptr,
                               /*requested_cus=*/12));
    eq.run();
    EXPECT_EQ(last.mask.count(), 12u);
    EXPECT_EQ(last.mask.activeSeCount(gpu.arch), 1u);
}

TEST(Trace, DisablingStopsEvents)
{
    EventQueue eq;
    GpuDevice device(eq, gpu);
    int count = 0;
    device.setTraceFn([&](const KernelTraceEvent &) { ++count; });
    HsaQueue &q = device.createQueue();
    q.push(AqlPacket::dispatch(computeKernel(60, 10.0), nullptr));
    eq.run();
    EXPECT_EQ(count, 1);
    device.setTraceFn(nullptr);
    q.push(AqlPacket::dispatch(computeKernel(60, 10.0), nullptr));
    eq.run();
    EXPECT_EQ(count, 1);
}

TEST(Trace, SerializedKernelsDoNotOverlapInTrace)
{
    EventQueue eq;
    GpuDevice device(eq, gpu);
    std::vector<KernelTraceEvent> events;
    device.setTraceFn([&](const KernelTraceEvent &ev) {
        events.push_back(ev);
    });
    HsaQueue &q = device.createQueue();
    ModelZoo zoo(gpu.arch);
    const auto &seq = zoo.kernels("alexnet", 8);
    for (const auto &k : seq)
        q.push(AqlPacket::dispatch(k, nullptr)); // barrier bit set
    eq.run();
    ASSERT_EQ(events.size(), seq.size());
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_GE(events[i].startTick, events[i - 1].endTick);
}

TEST(Trace, WallClockCoversSumOfKernelTimes)
{
    // Conservation: for a serialised stream, total wall time equals
    // the sum of kernel windows plus per-kernel fixed overheads.
    EventQueue eq;
    GpuDevice device(eq, gpu);
    double window_ns = 0;
    unsigned count = 0;
    device.setTraceFn([&](const KernelTraceEvent &ev) {
        window_ns += static_cast<double>(ev.endTick - ev.startTick);
        ++count;
    });
    HsaQueue &q = device.createQueue();
    for (int i = 0; i < 10; ++i)
        q.push(AqlPacket::dispatch(computeKernel(120, 50.0), nullptr));
    const Tick t0 = eq.now();
    eq.run();
    const double wall = static_cast<double>(eq.now() - t0);
    const double overheads =
        static_cast<double>(count) *
        static_cast<double>(gpu.packetProcessNs +
                            gpu.kernelLaunchOverheadNs);
    EXPECT_NEAR(wall, window_ns + overheads, count * 2.0);
}

TEST(Trace, ConcurrentQueuesInterleave)
{
    EventQueue eq;
    GpuDevice device(eq, gpu);
    std::vector<KernelTraceEvent> events;
    device.setTraceFn([&](const KernelTraceEvent &ev) {
        events.push_back(ev);
    });
    HsaQueue &qa = device.createQueue();
    HsaQueue &qb = device.createQueue();
    qa.push(AqlPacket::dispatch(computeKernel(2400, 100.0), nullptr));
    qb.push(AqlPacket::dispatch(computeKernel(2400, 100.0), nullptr));
    eq.run();
    ASSERT_EQ(events.size(), 2u);
    // Their windows overlap (same dispatch time, shared device).
    EXPECT_LT(events[0].startTick, events[1].endTick);
    EXPECT_LT(events[1].startTick, events[0].endTick);
    EXPECT_NE(events[0].queue, events[1].queue);
}

} // namespace
} // namespace krisp
