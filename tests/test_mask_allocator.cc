/**
 * @file
 * Unit tests for Algorithm 1 (partition resource mask generation) and
 * its three CU distribution policies.
 */

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/mask_allocator.hh"

namespace krisp
{
namespace
{

const ArchParams arch = ArchParams::mi50();

TEST(MaskAllocator, ConservedUsesFewestSes)
{
    ResourceMonitor idle(arch);
    MaskAllocator alloc(DistributionPolicy::Conserved);
    // Fig. 7: 19 CUs -> 2 SEs, split 10 + 9.
    const CuMask m = alloc.allocate(19, idle);
    EXPECT_EQ(m.count(), 19u);
    EXPECT_EQ(m.activeSeCount(arch), 2u);
    EXPECT_EQ(m.countInSe(arch, 0), 10u);
    EXPECT_EQ(m.countInSe(arch, 1), 9u);
}

TEST(MaskAllocator, DistributedSpreadsAcrossAllSes)
{
    ResourceMonitor idle(arch);
    MaskAllocator alloc(DistributionPolicy::Distributed);
    // Fig. 7: 19 CUs distributed -> 5,5,5,4.
    const CuMask m = alloc.allocate(19, idle);
    EXPECT_EQ(m.count(), 19u);
    EXPECT_EQ(m.activeSeCount(arch), 4u);
    EXPECT_EQ(m.countInSe(arch, 0), 5u);
    EXPECT_EQ(m.countInSe(arch, 3), 4u);
}

TEST(MaskAllocator, PackedFillsSeBeforeSpilling)
{
    ResourceMonitor idle(arch);
    MaskAllocator alloc(DistributionPolicy::Packed);
    // Fig. 7: 19 CUs packed -> 15 + 4.
    const CuMask m = alloc.allocate(19, idle);
    EXPECT_EQ(m.count(), 19u);
    EXPECT_EQ(m.countInSe(arch, 0), 15u);
    EXPECT_EQ(m.countInSe(arch, 1), 4u);
}

TEST(MaskAllocator, FullDeviceRequest)
{
    ResourceMonitor idle(arch);
    for (const auto policy :
         {DistributionPolicy::Conserved, DistributionPolicy::Packed,
          DistributionPolicy::Distributed}) {
        MaskAllocator alloc(policy);
        EXPECT_EQ(alloc.allocate(60, idle).count(), 60u);
        // Over-sized requests clamp to the device.
        EXPECT_EQ(alloc.allocate(200, idle).count(), 60u);
    }
}

TEST(MaskAllocator, SingleCuRequest)
{
    ResourceMonitor idle(arch);
    MaskAllocator alloc(DistributionPolicy::Conserved);
    const CuMask m = alloc.allocate(1, idle);
    EXPECT_EQ(m.count(), 1u);
    EXPECT_EQ(m.activeSeCount(arch), 1u);
}

TEST(MaskAllocator, EvenSplitAcrossSes)
{
    // 31 CUs conserved -> 3 SEs split 11/10/10 (not 11/11/9).
    ResourceMonitor idle(arch);
    MaskAllocator alloc(DistributionPolicy::Conserved);
    const CuMask m = alloc.allocate(31, idle);
    EXPECT_EQ(m.count(), 31u);
    EXPECT_EQ(m.activeSeCount(arch), 3u);
    EXPECT_EQ(m.minCusPerActiveSe(arch), 10u);
}

TEST(MaskAllocator, PicksLeastLoadedSe)
{
    ResourceMonitor mon(arch);
    // Occupy SE0 completely.
    mon.addKernel(CuMask::firstN(15));
    MaskAllocator alloc(DistributionPolicy::Conserved);
    const CuMask m = alloc.allocate(15, mon);
    EXPECT_EQ(m.count(), 15u);
    EXPECT_EQ(m.countInSe(arch, 0), 0u);
}

TEST(MaskAllocator, PicksLeastLoadedCusWithinSe)
{
    ResourceMonitor mon(arch);
    // Occupy the first 5 CUs of every SE (ties the SE choice, so the
    // stable sort picks SE0); the grant must use the idle CUs.
    CuMask busy;
    for (unsigned se = 0; se < arch.numSe; ++se)
        for (unsigned cu = 0; cu < 5; ++cu)
            busy.setSeCu(arch, se, cu);
    mon.addKernel(busy);
    MaskAllocator alloc(DistributionPolicy::Conserved);
    const CuMask m = alloc.allocate(10, mon);
    EXPECT_EQ(m.count(), 10u);
    // All granted CUs are the idle ones of SE0.
    for (unsigned cu = 0; cu < 5; ++cu)
        EXPECT_FALSE(m.test(cu));
    for (unsigned cu = 5; cu < 15; ++cu)
        EXPECT_TRUE(m.test(cu));
}

TEST(MaskAllocator, IsolationGrantsDisjointMasks)
{
    ResourceMonitor mon(arch);
    MaskAllocator alloc(DistributionPolicy::Conserved,
                        /*overlap_limit=*/0);
    const CuMask a = alloc.allocate(20, mon);
    mon.addKernel(a);
    const CuMask b = alloc.allocate(20, mon);
    mon.addKernel(b);
    const CuMask c = alloc.allocate(20, mon);
    EXPECT_EQ(a.count(), 20u);
    EXPECT_EQ(b.count(), 20u);
    EXPECT_EQ(c.count(), 20u);
    EXPECT_TRUE((a & b).empty());
    EXPECT_TRUE((a & c).empty());
    EXPECT_TRUE((b & c).empty());
}

TEST(MaskAllocator, BalancedModeShrinksWhenGpuIsBusy)
{
    ResourceMonitor mon(arch);
    MaskAllocator alloc(DistributionPolicy::Conserved,
                        /*overlap_limit=*/0);
    // 50 of 60 CUs already taken.
    mon.addKernel(CuMask::firstN(50));
    const CuMask m = alloc.allocate(40, mon);
    // Half-request floor: 20 CUs, balanced, preferring idle CUs.
    EXPECT_EQ(m.count(), 20u);
    EXPECT_GE(m.minCusPerActiveSe(arch),
              m.count() / m.activeSeCount(arch));
    EXPECT_EQ(alloc.stats().shortGrants, 1u);
}

TEST(MaskAllocator, BalancedModePrefersIdleCus)
{
    ResourceMonitor mon(arch);
    MaskAllocator alloc(DistributionPolicy::Conserved,
                        /*overlap_limit=*/0);
    mon.addKernel(CuMask::firstN(30)); // SE0+SE1 busy
    const CuMask m = alloc.allocate(30, mon);
    EXPECT_EQ(m.count(), 30u);
    EXPECT_TRUE((m & CuMask::firstN(30)).empty());
}

TEST(MaskAllocator, OverlapBudgetExtendsGrant)
{
    ResourceMonitor mon(arch);
    mon.addKernel(CuMask::firstN(50));
    // Budget of 60 (KRISP-O): full request granted with overlap.
    MaskAllocator oversub(DistributionPolicy::Conserved, 60);
    EXPECT_EQ(oversub.allocate(40, mon).count(), 40u);
    // Budget of 10: 10 idle + 10 overlap = 20... the grant can reach
    // free + budget = 20.
    MaskAllocator limited(DistributionPolicy::Conserved, 10);
    EXPECT_EQ(limited.allocate(40, mon).count(), 20u);
}

TEST(MaskAllocator, StrictModeSkipsOccupiedCus)
{
    ResourceMonitor mon(arch);
    mon.addKernel(CuMask::firstN(15)); // SE0 fully busy
    MaskAllocator alloc(DistributionPolicy::Packed, 0);
    alloc.setBalancedGrants(false);
    // Packed strict over SE order by load: SE1..3 idle first.
    const CuMask m = alloc.allocate(50, mon);
    // 45 idle CUs grantable; the 5 occupied SE0 CUs are skipped but
    // counted, so the grant is short.
    EXPECT_EQ(m.count(), 45u);
    EXPECT_EQ((m & CuMask::firstN(15)).count(), 0u);
}

TEST(MaskAllocator, StrictModeNeverReturnsEmpty)
{
    ResourceMonitor mon(arch);
    mon.addKernel(CuMask::full(arch));
    MaskAllocator alloc(DistributionPolicy::Conserved, 0);
    alloc.setBalancedGrants(false);
    const CuMask m = alloc.allocate(30, mon);
    EXPECT_EQ(m.count(), 1u); // single least-loaded CU fallback
}

TEST(MaskAllocator, BalancedModeFullyBusyDeviceStillGrants)
{
    ResourceMonitor mon(arch);
    mon.addKernel(CuMask::full(arch));
    MaskAllocator alloc(DistributionPolicy::Conserved, 0);
    const CuMask m = alloc.allocate(30, mon);
    // Escape hatch: half the request, overlapped.
    EXPECT_EQ(m.count(), 15u);
}

TEST(MaskAllocator, StatsAccumulate)
{
    ResourceMonitor mon(arch);
    MaskAllocator alloc(DistributionPolicy::Conserved, 0);
    alloc.allocate(10, mon);
    mon.addKernel(CuMask::firstN(60));
    alloc.allocate(10, mon);
    EXPECT_EQ(alloc.stats().requests, 2u);
    EXPECT_GT(alloc.stats().grantedCus, 10u);
    EXPECT_GT(alloc.stats().overlappedCus, 0u);
}

TEST(MaskAllocator, PolicyNames)
{
    EXPECT_STREQ(distributionPolicyName(DistributionPolicy::Conserved),
                 "conserved");
    EXPECT_STREQ(distributionPolicyName(DistributionPolicy::Packed),
                 "packed");
    EXPECT_STREQ(
        distributionPolicyName(DistributionPolicy::Distributed),
        "distributed");
}

/** Property sweep: every size yields a valid balanced grant. */
class AllocatorSweep
    : public ::testing::TestWithParam<DistributionPolicy>
{
};

TEST_P(AllocatorSweep, EverySizeOnIdleDevice)
{
    ResourceMonitor idle(arch);
    MaskAllocator alloc(GetParam());
    for (unsigned n = 1; n <= 60; ++n) {
        const CuMask m = alloc.allocate(n, idle);
        EXPECT_EQ(m.count(), n) << "size " << n;
        // Balance: per-SE counts differ by at most one (packed fills
        // whole SEs so only its last SE may be partial).
        if (GetParam() != DistributionPolicy::Packed) {
            unsigned lo = 15, hi = 0;
            for (unsigned se = 0; se < 4; ++se) {
                const unsigned c = m.countInSe(arch, se);
                if (c > 0) {
                    lo = std::min(lo, c);
                    hi = std::max(hi, c);
                }
            }
            EXPECT_LE(hi - lo, 1u) << "size " << n;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Policies, AllocatorSweep,
                         ::testing::Values(
                             DistributionPolicy::Conserved,
                             DistributionPolicy::Distributed,
                             DistributionPolicy::Packed));

/**
 * Property-based randomized sweep: seeded alloc/release sequences
 * with invariants checked after every step. A failure message names
 * the (policy, limit, balanced, seed) tuple and the step, so any
 * counterexample replays exactly.
 */
struct PropCase
{
    DistributionPolicy policy;
    unsigned overlapLimit;
    bool balanced;
    std::uint64_t seed;
};

void
PrintTo(const PropCase &c, std::ostream *os)
{
    *os << distributionPolicyName(c.policy) << "/limit"
        << c.overlapLimit << (c.balanced ? "/balanced" : "/strict")
        << "/seed" << c.seed;
}

class AllocatorProperty : public ::testing::TestWithParam<PropCase>
{
};

TEST_P(AllocatorProperty, RandomAllocReleaseSequences)
{
    const PropCase c = GetParam();
    const unsigned total = arch.totalCus();
    Rng rng(c.seed);
    ResourceMonitor mon(arch);
    MaskAllocator alloc(c.policy, c.overlapLimit);
    alloc.setBalancedGrants(c.balanced);

    std::vector<CuMask> live;
    std::vector<unsigned> ref(total, 0); // reference per-CU counts

    for (unsigned step = 0; step < 400; ++step) {
        SCOPED_TRACE(::testing::Message() << "step " << step);
        const bool do_alloc = live.empty() || rng.chance(0.6);
        if (do_alloc) {
            const unsigned requested =
                1 + static_cast<unsigned>(rng.below(70));
            const unsigned num_cus = std::min(requested, total);
            const unsigned free = mon.idleCus().count();

            const CuMask m = alloc.allocate(requested, mon);

            // Grant shape: non-empty, never larger than the
            // (clamped) request, only device CUs, SE bounds.
            ASSERT_GE(m.count(), 1u);
            ASSERT_LE(m.count(), num_cus);
            ASSERT_EQ((m & CuMask::full(arch)).count(), m.count());
            for (unsigned se = 0; se < arch.numSe; ++se)
                ASSERT_LE(m.countInSe(arch, se), arch.cusPerSe);

            unsigned overlap = 0;
            for (unsigned cu = 0; cu < total; ++cu)
                if (m.test(cu) && ref[cu] > 0)
                    ++overlap;

            if (!c.balanced) {
                // Literal Algorithm 1: granted-occupied CUs stay
                // within the overlap budget. The single-CU fallback
                // (nothing isolated available) is the one exception.
                if (m.count() > 1)
                    ASSERT_LE(overlap, c.overlapLimit);
            } else {
                // Balanced mode grants exactly the shrunk target:
                // the full request while free + budget covers it,
                // else what the budget supplies, floored at half.
                const unsigned budget =
                    std::min(c.overlapLimit, total);
                unsigned target = num_cus;
                if (free + budget < num_cus)
                    target =
                        std::max((num_cus + 1) / 2, free + budget);
                target = std::clamp(target, 1u, total);
                ASSERT_EQ(m.count(), target);
                // Balance invariant: active-SE counts differ by at
                // most one (packed fills SEs whole, so only its
                // last SE may be ragged).
                if (c.policy != DistributionPolicy::Packed) {
                    unsigned lo = arch.cusPerSe, hi = 0;
                    for (unsigned se = 0; se < arch.numSe; ++se) {
                        const unsigned n = m.countInSe(arch, se);
                        if (n > 0) {
                            lo = std::min(lo, n);
                            hi = std::max(hi, n);
                        }
                    }
                    ASSERT_LE(hi - lo, 1u);
                }
            }

            mon.addKernel(m);
            live.push_back(m);
            for (unsigned cu = 0; cu < total; ++cu)
                if (m.test(cu))
                    ++ref[cu];
        } else {
            const std::size_t victim = static_cast<std::size_t>(
                rng.below(live.size()));
            mon.removeKernel(live[victim]);
            for (unsigned cu = 0; cu < total; ++cu)
                if (live[victim].test(cu))
                    --ref[cu];
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(victim));
        }

        // The monitor agrees with the reference model after every
        // step: per-CU counts (over-subscription fully accounted),
        // residency, and the derived busy/idle views.
        unsigned busy = 0;
        for (unsigned cu = 0; cu < total; ++cu) {
            ASSERT_EQ(mon.kernelsOnCu(cu), ref[cu])
                << "cu " << cu;
            if (ref[cu] > 0)
                ++busy;
        }
        ASSERT_EQ(mon.residentKernels(), live.size());
        ASSERT_EQ(mon.busyCus(), busy);
        ASSERT_EQ(mon.idleCus().count(), total - busy);
    }

    // Full release returns the monitor to pristine state.
    for (const CuMask &m : live)
        mon.removeKernel(m);
    EXPECT_EQ(mon.busyCus(), 0u);
    EXPECT_EQ(mon.idleCus().count(), total);
    EXPECT_EQ(mon.residentKernels(), 0u);
    for (unsigned se = 0; se < arch.numSe; ++se)
        EXPECT_EQ(mon.seKernelSum(se), 0u);
}

std::vector<PropCase>
propCases()
{
    std::vector<PropCase> cases;
    for (const auto policy :
         {DistributionPolicy::Conserved, DistributionPolicy::Packed,
          DistributionPolicy::Distributed}) {
        for (const unsigned limit : {0u, 10u, 60u}) {
            for (const bool balanced : {true, false}) {
                for (const std::uint64_t seed : {11ull, 29ull}) {
                    cases.push_back(
                        PropCase{policy, limit, balanced, seed});
                }
            }
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Randomized, AllocatorProperty,
                         ::testing::ValuesIn(propCases()));

TEST(MaskAllocatorDeath, ZeroRequestRejected)
{
    ResourceMonitor idle(arch);
    MaskAllocator alloc;
    EXPECT_EXIT(alloc.allocate(0, idle),
                ::testing::ExitedWithCode(1), "zero");
}

TEST(ResourceMonitor, AddRemoveCycle)
{
    ResourceMonitor mon(arch);
    const CuMask m = CuMask::firstN(10);
    mon.addKernel(m);
    mon.addKernel(m);
    EXPECT_EQ(mon.kernelsOnCu(0), 2u);
    EXPECT_EQ(mon.seKernelSum(0), 20u);
    EXPECT_EQ(mon.residentKernels(), 2u);
    mon.removeKernel(m);
    EXPECT_EQ(mon.kernelsOnCu(0), 1u);
    mon.removeKernel(m);
    EXPECT_EQ(mon.busyCus(), 0u);
    EXPECT_EQ(mon.idleCus().count(), 60u);
}

TEST(ResourceMonitorDeath, Underflow)
{
    ResourceMonitor mon(arch);
    EXPECT_DEATH(mon.removeKernel(CuMask::firstN(1)), "empty");
}

} // namespace
} // namespace krisp
