/**
 * @file
 * Tests for the autoregressive LLM workload: the zoo's
 * prefill/decode lowering (bucketing, kernel counts, caching, and
 * the memory-bound decode right-size), and the serving engine
 * (continuous batching, KV-cache conservation, preemption with
 * recompute, determinism, and the continuous-vs-static goodput
 * ordering the bench gates in CI).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "models/model_zoo.hh"
#include "profile/kernel_profiler.hh"
#include "profile/model_profiler.hh"
#include "server/llm_engine.hh"

namespace krisp
{
namespace
{

TEST(LlmZoo, WorkloadsAndLookup)
{
    const auto &llms = ModelZoo::llmWorkloads();
    ASSERT_EQ(llms.size(), 2u);
    EXPECT_EQ(llms[0].name, "llm-small");
    EXPECT_EQ(llms[1].name, "llm-medium");

    EXPECT_TRUE(ModelZoo::isLlm("llm-small"));
    EXPECT_TRUE(ModelZoo::isLlm("llm-medium"));
    EXPECT_FALSE(ModelZoo::isLlm("resnet152"));
    EXPECT_FALSE(ModelZoo::isLlm(""));
    // The LLM names are not CNN workloads and vice versa.
    EXPECT_FALSE(ModelZoo::isModel("llm-small"));

    const LlmParams &p = ModelZoo::llmInfo("llm-small");
    EXPECT_EQ(p.layers, 4u);
    EXPECT_EQ(p.hidden, 512u);
    EXPECT_EQ(p.heads, 8u);
    EXPECT_EQ(p.headDim, 64u);
    EXPECT_EQ(p.maxContext, 2048u);
    // fp32 K+V per token: 2 * layers * hidden * 4 bytes.
    EXPECT_DOUBLE_EQ(p.kvBytesPerToken(), 2.0 * 4 * 512 * 4);
}

TEST(LlmZoo, ContextBucketRoundsUpToGranule)
{
    EXPECT_EQ(ModelZoo::contextBucket(0), 256u);
    EXPECT_EQ(ModelZoo::contextBucket(1), 256u);
    EXPECT_EQ(ModelZoo::contextBucket(256), 256u);
    EXPECT_EQ(ModelZoo::contextBucket(257), 512u);
    EXPECT_EQ(ModelZoo::contextBucket(1000), 1024u);
    EXPECT_EQ(ModelZoo::contextBucket(2048), 2048u);
}

TEST(LlmZoo, KernelCountsAndCaching)
{
    ModelZoo zoo(GpuConfig::mi50().arch);

    // llm-small decode: 4 layers x 10 kernels + final norm + logits.
    const auto &dec = zoo.llmDecodeKernels("llm-small", 1, 256);
    EXPECT_EQ(dec.size(), 42u);
    // Prefill chunk: gather + 4 layers x 13 kernels + norm + logits.
    const auto &pre = zoo.llmPrefillKernels("llm-small", 256, 0);
    EXPECT_EQ(pre.size(), 55u);
    // Kernel count is context-invariant; only shapes change.
    EXPECT_EQ(zoo.llmDecodeKernels("llm-small", 1, 2048).size(), 42u);

    // Sequences are cached per bucket: two contexts in the same
    // bucket share the descriptor vector, different buckets do not.
    const auto &a = zoo.llmDecodeKernels("llm-small", 2, 300);
    const auto &b = zoo.llmDecodeKernels("llm-small", 2, 500);
    const auto &c = zoo.llmDecodeKernels("llm-small", 2, 513);
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &c);
    const auto &p1 = zoo.llmPrefillKernels("llm-small", 100, 257);
    const auto &p2 = zoo.llmPrefillKernels("llm-small", 256, 512);
    EXPECT_EQ(&p1, &p2);
}

TEST(LlmZoo, DecodeRightSizesBelowCnnServingFloor)
{
    // The acceptance gate: decode-step launches must exercise
    // right-size grants below anything the CNN serving workloads ask
    // for. The CNNs serve at the paper's batch 32; decode steps are
    // memory-bound, so their Required-CUs sit well under the most
    // frugal CNN at serving batch even as decode batch grows.
    const GpuConfig gpu = GpuConfig::mi50();
    ModelZoo zoo(gpu.arch);
    KernelProfiler kp(gpu, ProfilerConfig{});
    ModelProfiler prof(kp);

    unsigned cnn_serving_floor = std::numeric_limits<unsigned>::max();
    unsigned cnn_b8_floor = std::numeric_limits<unsigned>::max();
    for (const WorkloadInfo &w : ModelZoo::workloads()) {
        cnn_serving_floor = std::min(
            cnn_serving_floor, prof.rightSizeCus(zoo.kernels(w.name, 32)));
        cnn_b8_floor = std::min(cnn_b8_floor,
                                prof.rightSizeCus(zoo.kernels(w.name, 8)));
    }
    ASSERT_GT(cnn_serving_floor, 0u);

    unsigned decode_max = 0;
    for (unsigned batch : {1u, 4u, 8u})
        for (unsigned ctx : {256u, 1024u, 2048u}) {
            const unsigned rs = prof.rightSizeCus(
                zoo.llmDecodeKernels("llm-small", batch, ctx));
            EXPECT_GE(rs, 1u);
            EXPECT_LT(rs, cnn_serving_floor)
                << "decode b=" << batch << " ctx=" << ctx;
            decode_max = std::max(decode_max, rs);
        }
    // Single-sequence decode matches the global floor: no CNN at any
    // serving batch right-sizes below it.
    const unsigned decode_b1 =
        prof.rightSizeCus(zoo.llmDecodeKernels("llm-small", 1, 256));
    EXPECT_LE(decode_b1, cnn_b8_floor);

    // Prefill is the compute-wide phase: a chunk wants strictly more
    // CUs than a single-sequence decode step.
    const unsigned prefill =
        prof.rightSizeCus(zoo.llmPrefillKernels("llm-small", 256, 0));
    EXPECT_GT(prefill, decode_b1);
    // Headroom sanity on the measured envelope (5..12 CUs today): a
    // regression that balloons decode to CNN-like sizes must trip.
    EXPECT_LE(decode_max, 14u);
}

/** A small, fast engine configuration the tests share. */
LlmEngineConfig
quickConfig()
{
    LlmEngineConfig cfg;
    cfg.model = "llm-small";
    cfg.scheduler = LlmScheduler::Continuous;
    cfg.arrivalRatePerSec = 128.0;
    cfg.promptMinTokens = 16;
    cfg.promptMaxTokens = 64;
    cfg.outputMinTokens = 8;
    cfg.outputMaxTokens = 24;
    cfg.maxDecodeBatch = 4;
    cfg.kvBudgetBytes = 64.0 * 1024 * 1024;
    cfg.warmupNs = 10'000'000;
    cfg.measureNs = 80'000'000;
    cfg.maxSimNs = 10'000'000'000;
    cfg.seed = 7;
    return cfg;
}

TEST(LlmEngine, ContinuousRunCompletesAndConservesKv)
{
    LlmEngineConfig cfg = quickConfig();
    LlmResult r = LlmEngine(cfg).run();

    EXPECT_FALSE(r.timedOut);
    EXPECT_GT(r.arrivals, 0u);
    EXPECT_GT(r.served, 0u);
    EXPECT_EQ(r.dropped, 0u);
    EXPECT_GT(r.tokens, r.served) << "multi-token generations";
    EXPECT_GT(r.tokensPerSec, 0.0);
    EXPECT_GT(r.decodeSteps, 0u);
    EXPECT_GE(r.prefillChunks, r.served)
        << "every served request prefilled at least one chunk";
    EXPECT_GE(r.meanDecodeBatch, 1.0);
    EXPECT_LE(r.meanDecodeBatch, cfg.maxDecodeBatch);

    // Latency phases are ordered: first token <= end-to-end, and the
    // percentile guards returned real observations.
    EXPECT_GT(r.ttftP50Ms, 0.0);
    EXPECT_GT(r.itlP50Ms, 0.0);
    EXPECT_GE(r.ttftP99Ms, r.ttftP50Ms);
    EXPECT_GE(r.e2eP50Ms, r.ttftP50Ms);
    EXPECT_GE(r.e2eP99Ms, r.e2eP50Ms);

    // KV ledger: clean drain, exact conservation, budget respected.
    EXPECT_EQ(r.kvLeakBytes, 0u);
    EXPECT_EQ(r.kvAllocatedCum, r.kvFreedCum);
    EXPECT_GT(r.kvPeakBytes, 0u);
    EXPECT_LE(static_cast<double>(r.kvPeakBytes), cfg.kvBudgetBytes);
}

TEST(LlmEngine, DeterministicAcrossRuns)
{
    const LlmEngineConfig cfg = quickConfig();
    LlmResult a = LlmEngine(cfg).run();
    LlmResult b = LlmEngine(cfg).run();

    EXPECT_EQ(a.arrivals, b.arrivals);
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.good, b.good);
    EXPECT_EQ(a.tokens, b.tokens);
    EXPECT_EQ(a.decodeSteps, b.decodeSteps);
    EXPECT_EQ(a.prefillChunks, b.prefillChunks);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.kvAllocatedCum, b.kvAllocatedCum);
    EXPECT_EQ(a.kvPeakBytes, b.kvPeakBytes);
    EXPECT_DOUBLE_EQ(a.tokensPerSec, b.tokensPerSec);
    EXPECT_DOUBLE_EQ(a.ttftP99Ms, b.ttftP99Ms);
    EXPECT_DOUBLE_EQ(a.itlP99Ms, b.itlP99Ms);
    EXPECT_DOUBLE_EQ(a.e2eP99Ms, b.e2eP99Ms);
}

TEST(LlmEngine, TightBudgetPreemptsAndStillConserves)
{
    // A budget barely above one maximal request forces the engine to
    // preempt under concurrency; preempted requests drop their cache
    // and recompute it, and the ledger must still balance exactly.
    LlmEngineConfig cfg = quickConfig();
    cfg.arrivalRatePerSec = 384.0;
    cfg.promptMinTokens = 32;
    cfg.promptMaxTokens = 64;
    cfg.outputMinTokens = 16;
    cfg.outputMaxTokens = 32;
    const double per_req =
        (cfg.promptMaxTokens + cfg.outputMaxTokens) *
        ModelZoo::llmInfo(cfg.model).kvBytesPerToken();
    cfg.kvBudgetBytes = 1.4 * per_req;
    LlmResult r = LlmEngine(cfg).run();

    EXPECT_FALSE(r.timedOut);
    EXPECT_GT(r.served, 0u);
    EXPECT_GT(r.preemptions, 0u);
    EXPECT_GT(r.recomputedTokens, 0u);
    EXPECT_EQ(r.kvLeakBytes, 0u);
    EXPECT_EQ(r.kvAllocatedCum, r.kvFreedCum);
    EXPECT_LE(static_cast<double>(r.kvPeakBytes), cfg.kvBudgetBytes);
}

TEST(LlmEngine, ContinuousBeatsStaticGoodputAtMidRate)
{
    // The bench's CI-gated headline, reproduced at unit scale: at an
    // offered rate near capacity, joining the running decode batch
    // between steps beats waiting for a full static batch slot.
    LlmEngineConfig cfg; // bench defaults: prompts 32..512, out 16..128
    cfg.arrivalRatePerSec = 256.0;
    cfg.warmupNs = 20'000'000;
    cfg.measureNs = 120'000'000;
    cfg.seed = 0x11AA5;

    cfg.scheduler = LlmScheduler::Static;
    LlmResult stat = LlmEngine(cfg).run();
    cfg.scheduler = LlmScheduler::Continuous;
    LlmResult cont = LlmEngine(cfg).run();

    // Both schedulers drain cleanly and conserve KV.
    for (const LlmResult *r : {&stat, &cont}) {
        EXPECT_FALSE(r->timedOut);
        EXPECT_EQ(r->kvLeakBytes, 0u);
        EXPECT_EQ(r->kvAllocatedCum, r->kvFreedCum);
    }
    EXPECT_GT(cont.goodputRps, 0.0);
    EXPECT_GE(cont.goodputRps, stat.goodputRps);
    // Time-to-first-token is where static batching pays: the tail
    // holds arrivals for a batch slot.
    EXPECT_LE(cont.ttftP99Ms, stat.ttftP99Ms);
}

using LlmEngineDeath = ::testing::Test;

TEST(LlmEngineDeath, RejectsNonLlmModel)
{
    LlmEngineConfig cfg = quickConfig();
    cfg.model = "resnet152";
    EXPECT_DEATH(LlmEngine{cfg}, "not an LLM model");
}

TEST(LlmEngineDeath, RejectsZeroDecodeBatch)
{
    LlmEngineConfig cfg = quickConfig();
    cfg.maxDecodeBatch = 0;
    EXPECT_DEATH(LlmEngine{cfg}, "decode batch must be non-zero");
}

TEST(LlmEngineDeath, RejectsContextOverflow)
{
    LlmEngineConfig cfg = quickConfig();
    cfg.promptMaxTokens = 2048;
    cfg.outputMaxTokens = 128;
    EXPECT_DEATH(LlmEngine{cfg}, "exceeds llm-small max context");
}

TEST(LlmEngineDeath, RejectsBudgetBelowOneRequest)
{
    LlmEngineConfig cfg = quickConfig();
    cfg.kvBudgetBytes = 1024;
    EXPECT_DEATH(LlmEngine{cfg},
                 "KV budget cannot hold one maximal request");
}

TEST(LlmEngineDeath, StaticRejectsBudgetBelowFullBatch)
{
    LlmEngineConfig cfg = quickConfig();
    cfg.scheduler = LlmScheduler::Static;
    const double per_req =
        (cfg.promptMaxTokens + cfg.outputMaxTokens) *
        ModelZoo::llmInfo(cfg.model).kvBytesPerToken();
    // Holds one maximal request, not maxDecodeBatch of them.
    cfg.kvBudgetBytes = per_req * (cfg.maxDecodeBatch - 1);
    EXPECT_DEATH(LlmEngine{cfg},
                 "static scheduler KV budget cannot hold a full batch");
}

} // namespace
} // namespace krisp
