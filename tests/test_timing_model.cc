/**
 * @file
 * Unit and property tests for the isolated kernel timing model:
 * workgroup wave quantisation, shader-engine imbalance, saturation
 * floors and the memory roofline.
 */

#include <gtest/gtest.h>

#include "kern/kernel_builder.hh"
#include "kern/timing_model.hh"

namespace krisp
{
namespace
{

const ArchParams arch = ArchParams::mi50();

/** Purely compute-bound synthetic kernel. */
KernelDescriptor
computeKernel(unsigned wgs, double wg_ns, unsigned sat = 1)
{
    KernelDescriptor d;
    d.name = "synthetic_compute";
    d.numWorkgroups = wgs;
    d.wgDurationNs = wg_ns;
    d.saturationWgsPerCu = sat;
    d.bytes = 0;
    return d;
}

/** Purely memory-bound synthetic kernel. */
KernelDescriptor
memoryKernel(double bytes, double issue_factor = 1.0)
{
    KernelDescriptor d;
    d.name = "synthetic_memory";
    d.numWorkgroups = 10000;
    d.wgDurationNs = 0.001;
    d.saturationWgsPerCu = 1;
    d.bytes = bytes;
    d.issueFactor = issue_factor;
    return d;
}

/** Conserved mask with n CUs: fewest SEs, split +/- one CU. */
CuMask
conservedMask(unsigned n)
{
    const unsigned num_se = (n + arch.cusPerSe - 1) / arch.cusPerSe;
    const unsigned base = n / num_se;
    const unsigned extra = n % num_se;
    CuMask m;
    for (unsigned se = 0; se < num_se; ++se) {
        const unsigned quota = base + (se < extra ? 1 : 0);
        for (unsigned cu = 0; cu < quota; ++cu)
            m.setSeCu(arch, se, cu);
    }
    return m;
}

TEST(TimingModel, OneWgPerCuAtFullDevice)
{
    // 240 WGs over 60 CUs (4 SEs): 60 per SE, 4 per CU.
    const auto d = computeKernel(240, 100.0);
    EXPECT_DOUBLE_EQ(
        timing::computeTimeNs(d, CuMask::full(arch), arch), 400.0);
}

TEST(TimingModel, ComputeScalesWithCus)
{
    const auto d = computeKernel(600, 10.0);
    const double t60 =
        timing::computeTimeNs(d, conservedMask(60), arch);
    const double t30 =
        timing::computeTimeNs(d, conservedMask(30), arch);
    const double t15 =
        timing::computeTimeNs(d, conservedMask(15), arch);
    EXPECT_NEAR(t30 / t60, 2.0, 0.1);
    EXPECT_NEAR(t15 / t60, 4.0, 0.1);
}

TEST(TimingModel, SaturationFloorMakesSmallKernelsTolerant)
{
    // 48 WGs, saturation 4: the kernel cannot use more than 12 CUs.
    const auto d = computeKernel(48, 100.0, 4);
    const double t60 =
        timing::computeTimeNs(d, CuMask::full(arch), arch);
    const double t12 =
        timing::computeTimeNs(d, conservedMask(12), arch);
    EXPECT_DOUBLE_EQ(t60, 400.0); // floor: 4 quanta
    EXPECT_DOUBLE_EQ(t12, t60);   // no loss down to 12 CUs
    const double t6 = timing::computeTimeNs(d, conservedMask(6), arch);
    EXPECT_GT(t6, t12);
}

TEST(TimingModel, PackedSixteenCuSpike)
{
    // Fig. 8: 16 CUs packed (15 + 1) halves the workgroups into the
    // one-CU SE -> massive slowdown vs 16 CUs conserved (8 + 8).
    const auto d = computeKernel(1200, 10.0);
    CuMask packed = CuMask::firstN(16);
    CuMask conserved;
    for (unsigned cu = 0; cu < 8; ++cu) {
        conserved.setSeCu(arch, 0, cu);
        conserved.setSeCu(arch, 1, cu);
    }
    const double t_packed = timing::computeTimeNs(d, packed, arch);
    const double t_conserved =
        timing::computeTimeNs(d, conserved, arch);
    // Packed: 600 WGs into the 1-CU SE -> 600 quanta. Conserved:
    // 600 / 8 = 75 quanta.
    EXPECT_DOUBLE_EQ(t_packed, 6000.0);
    EXPECT_DOUBLE_EQ(t_conserved, 750.0);
}

TEST(TimingModel, DistributedFifteenCuDip)
{
    // 15 CUs spread over 4 SEs (4,4,4,3): the 3-CU SE bottlenecks;
    // 15 CUs conserved in one SE has no such imbalance.
    const auto d = computeKernel(1200, 10.0);
    CuMask distributed;
    unsigned left = 15;
    for (unsigned cu = 0; cu < 4 && left; ++cu) {
        for (unsigned se = 0; se < 4 && left; ++se, --left)
            distributed.setSeCu(arch, se, cu);
    }
    ASSERT_EQ(distributed.count(), 15u);
    const double t_dist = timing::computeTimeNs(d, distributed, arch);
    const double t_cons =
        timing::computeTimeNs(d, conservedMask(15), arch);
    // Distributed: 300 WGs per SE, bottleneck ceil(300/3)=100 quanta.
    // Conserved: one SE, ceil(1200/15)=80 quanta.
    EXPECT_DOUBLE_EQ(t_dist, 1000.0);
    EXPECT_DOUBLE_EQ(t_cons, 800.0);
}

TEST(TimingModel, MemoryPlateau)
{
    // A memory-bound kernel keeps full-device latency while its CUs
    // can still issue the full bandwidth share.
    const auto d = memoryKernel(1024.0 * 1000); // 1000 ns at full BW
    const double t60 =
        timing::memoryTimeNs(d, 60, arch);
    EXPECT_DOUBLE_EQ(t60, 1000.0);
    // Saturation point: 1024 / 34 ~ 31 CUs at issue factor 1.
    const double t31 = timing::memoryTimeNs(d, 31, arch);
    EXPECT_NEAR(t31, 1000.0, 35.0);
    const double t10 = timing::memoryTimeNs(d, 10, arch);
    EXPECT_NEAR(t10, 1024.0 * 1000 / (10 * 34.0), 1.0);
    EXPECT_GT(t10, 2.0 * t60);
}

TEST(TimingModel, IssueFactorShiftsPlateau)
{
    const auto streaming = memoryKernel(1e6, 1.5);
    const auto scattered = memoryKernel(1e6, 0.6);
    // At 20 CUs the streaming kernel still saturates its share; the
    // scattered one is issue-limited.
    EXPECT_LT(timing::memoryTimeNs(streaming, 21, arch),
              timing::memoryTimeNs(scattered, 21, arch));
    // At 60 CUs both hit the device bandwidth cap.
    EXPECT_DOUBLE_EQ(timing::memoryTimeNs(streaming, 60, arch),
                     timing::memoryTimeNs(scattered, 60, arch));
}

TEST(TimingModel, RooflineMax)
{
    auto d = computeKernel(600, 10.0);
    d.bytes = 1024.0 * 500; // 500 ns of memory at full BW
    const CuMask full = CuMask::full(arch);
    // Compute: 600/60=10 per CU -> 100 ns; memory 500 ns wins.
    EXPECT_DOUBLE_EQ(timing::isolatedDurationNs(d, full, arch),
                     500.0);
    d.bytes = 1024.0 * 50;
    EXPECT_DOUBLE_EQ(timing::isolatedDurationNs(d, full, arch),
                     100.0);
}

TEST(TimingModel, ZeroByteKernelHasNoMemoryTime)
{
    const auto d = computeKernel(60, 10.0);
    EXPECT_DOUBLE_EQ(timing::memoryTimeNs(d, 60, arch), 0.0);
}

/** Monotonicity property over conserved masks. */
class MonotonicityTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MonotonicityTest, MoreCusNeverSlower)
{
    const unsigned wgs = GetParam();
    const auto d = computeKernel(wgs, 7.0, 2);
    double prev = 1e300;
    for (unsigned n = 1; n <= 60; ++n) {
        const double t =
            timing::computeTimeNs(d, conservedMask(n), arch);
        // Conserved masks are balanced, so latency is non-increasing
        // in the CU count up to small quantisation blips at the
        // SE-count transitions (the Fig. 16 spikes' cousins).
        EXPECT_LE(t, prev * 1.05)
            << "regression at " << n << " CUs";
        prev = t;
    }
}

INSTANTIATE_TEST_SUITE_P(WorkgroupCounts, MonotonicityTest,
                         ::testing::Values(1u, 7u, 48u, 96u, 600u,
                                           4096u, 100000u));

/** Real builder kernels behave sanely across the sweep. */
class BuilderSweepTest : public ::testing::TestWithParam<KernelClass>
{
};

TEST_P(BuilderSweepTest, LatencyFiniteAndBounded)
{
    const auto d = makeConv(arch, GetParam(),
                            {32, 64, 128, 28, 3, 1, 1, 1});
    const double t60 =
        timing::isolatedDurationNs(d, CuMask::full(arch), arch);
    const double t1 =
        timing::isolatedDurationNs(d, conservedMask(1), arch);
    EXPECT_GT(t60, 0.0);
    EXPECT_GE(t1, t60);
    EXPECT_LE(t1, t60 * 200.0); // 60 CUs can't be >200x one CU
}

INSTANTIATE_TEST_SUITE_P(ConvClasses, BuilderSweepTest,
                         ::testing::Values(
                             KernelClass::ImplicitGemmConv,
                             KernelClass::Sp3AsmConv,
                             KernelClass::ConvFft,
                             KernelClass::WinogradConv,
                             KernelClass::DepthwiseConv));

TEST(TimingModelDeath, EmptyMaskPanics)
{
    const auto d = computeKernel(10, 1.0);
    EXPECT_DEATH(timing::computeTimeNs(d, CuMask(), arch), "empty");
}

} // namespace
} // namespace krisp
