/**
 * @file
 * Second-generation observability tests: windowed timeline
 * accounting, deterministic request sampling, streaming trace
 * export, phase-breakdown reconciliation, obs health counters, the
 * JSON reader, SLO attainment math, and a golden krisp-report.
 *
 * The determinism contract under test: telemetry must never change
 * simulated results, and every exported artifact must be
 * byte-identical for any harness --jobs value.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster_server.hh"
#include "common/stats.hh"
#include "harness/parallel_runner.hh"
#include "obs/json.hh"
#include "obs/json_parse.hh"
#include "obs/obs.hh"
#include "obs/report.hh"
#include "obs/timeline.hh"
#include "server/load_generator.hh"

#ifndef KRISP_GOLDEN_DIR
#error "tests/CMakeLists.txt must define KRISP_GOLDEN_DIR"
#endif

namespace krisp
{
namespace
{

// ---- common/stats: LatencySummary ---------------------------------

TEST(LatencySummary, ExtractsPercentilesFromTracker)
{
    PercentileTracker t;
    for (int i = 1; i <= 100; ++i)
        t.add(static_cast<double>(i));
    const LatencySummary s = LatencySummary::from(t);
    EXPECT_EQ(s.count, 100u);
    EXPECT_DOUBLE_EQ(s.meanMs, 50.5);
    EXPECT_DOUBLE_EQ(s.minMs, 1.0);
    EXPECT_DOUBLE_EQ(s.maxMs, 100.0);
    EXPECT_DOUBLE_EQ(s.p50Ms, t.percentile(0.50));
    EXPECT_DOUBLE_EQ(s.p95Ms, t.percentile(0.95));
    EXPECT_DOUBLE_EQ(s.p99Ms, t.percentile(0.99));
}

TEST(LatencySummary, EmptyTrackerYieldsZeros)
{
    PercentileTracker t;
    const LatencySummary s = LatencySummary::from(t);
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.meanMs, 0.0);
    EXPECT_DOUBLE_EQ(s.p99Ms, 0.0);
}

// ---- json: non-finite serialisation -------------------------------

TEST(JsonNonFinite, CountedAndSerialisedAsZero)
{
    json::resetNonFiniteCount();
    EXPECT_EQ(json::number(std::nan("")), "0");
    EXPECT_EQ(json::number(INFINITY), "0");
    EXPECT_EQ(json::number(-INFINITY), "0");
    EXPECT_EQ(json::nonFiniteCount(), 3u);
    EXPECT_EQ(json::number(1.5), "1.5");
    EXPECT_EQ(json::nonFiniteCount(), 3u);

    ObsContext obs;
    publishObsHealth(obs);
    EXPECT_DOUBLE_EQ(
        obs.metrics.counter("obs.nonfinite_values").value(), 3.0);
    // Re-publishing must not double-count.
    publishObsHealth(obs);
    EXPECT_DOUBLE_EQ(
        obs.metrics.counter("obs.nonfinite_values").value(), 3.0);
    json::resetNonFiniteCount();
    EXPECT_EQ(json::nonFiniteCount(), 0u);
}

// ---- trace sink: record-limit drops -------------------------------

TEST(TraceSink, LimitDropsAreCountedAndSurfaced)
{
    ObsContext obs;
    obs.trace.setLimit(10);
    for (std::uint64_t id = 0; id < 25; ++id)
        obs.trace.requestEnqueue(0, "m", id);
    EXPECT_EQ(obs.trace.size(), 10u);
    EXPECT_EQ(obs.trace.dropped(), 15u);
    publishObsHealth(obs);
    EXPECT_DOUBLE_EQ(
        obs.metrics.counter("obs.trace_dropped").value(), 15.0);
    publishObsHealth(obs);
    EXPECT_DOUBLE_EQ(
        obs.metrics.counter("obs.trace_dropped").value(), 15.0);
}

// ---- trace sink: deterministic sampling ---------------------------

std::set<std::uint64_t>
keptRequests(TraceSink &sink)
{
    std::set<std::uint64_t> kept;
    for (const TraceRecord &rec : sink.records())
        for (const TraceArg &arg : rec.args)
            if (arg.key == "request")
                kept.insert(
                    std::strtoull(arg.json.c_str(), nullptr, 10));
    return kept;
}

TEST(TraceSampling, SelectionIsAFunctionOfTheRequestId)
{
    TraceSink fwd;
    fwd.setSample(7);
    for (std::uint64_t id = 0; id < 500; ++id)
        fwd.requestEnqueue(0, "m", id);
    // Same ids in reverse order, mixed helpers: same kept set.
    TraceSink rev;
    rev.setSample(7);
    for (std::uint64_t id = 500; id-- > 0;)
        rev.requestSpan(3, "other", id, 0, 10);

    const auto kept_fwd = keptRequests(fwd);
    const auto kept_rev = keptRequests(rev);
    EXPECT_EQ(kept_fwd, kept_rev);
    // ~1/7 kept; the hash is not metronomic, allow wide slack.
    EXPECT_GT(kept_fwd.size(), 500u / 7 / 3);
    EXPECT_LT(kept_fwd.size(), 3 * 500u / 7);
    for (const std::uint64_t id : kept_fwd)
        EXPECT_TRUE(fwd.sampleRequest(id));
}

TEST(TraceSampling, AppliesToTheWholeLifecycle)
{
    TraceSink sink;
    sink.setSample(5);
    for (std::uint64_t id = 0; id < 100; ++id) {
        sink.requestEnqueue(0, "m", id);
        sink.requestSpan(0, "m", id, 0, 5);
        sink.requestPhase(0, "m", id, "execute", 1, 4);
        sink.requestFlowBegin(id, tracePidServer, traceTidRouter);
        sink.requestDrop(0, "m", id, "test");
    }
    std::size_t per_kind[5] = {};
    for (const TraceRecord &rec : sink.records()) {
        switch (rec.kind) {
          case TraceEventKind::RequestEnqueue: ++per_kind[0]; break;
          case TraceEventKind::RequestSpan: ++per_kind[1]; break;
          case TraceEventKind::RequestPhase: ++per_kind[2]; break;
          case TraceEventKind::RequestFlow: ++per_kind[3]; break;
          case TraceEventKind::RequestDrop: ++per_kind[4]; break;
          default: break;
        }
    }
    EXPECT_GT(per_kind[0], 0u);
    for (int k = 1; k < 5; ++k)
        EXPECT_EQ(per_kind[k], per_kind[0]);
    // Sampling off keeps every event.
    TraceSink all;
    all.setSample(1);
    for (std::uint64_t id = 0; id < 100; ++id)
        all.requestEnqueue(0, "m", id);
    EXPECT_EQ(all.size(), 100u);
}

// ---- timeline: window-boundary accounting -------------------------

TEST(Timeline, SplitsUtilizationAtWindowBoundaries)
{
    TimelineRecorder tl;
    EXPECT_FALSE(tl.enabled());
    tl.recordRequest(50, 1.0); // no-op while disabled
    EXPECT_TRUE(tl.windows().empty());

    tl.enable(1000);
    // 10 busy CUs at 100 W over [0, 2500), then idle to 3000.
    tl.recordUtilization(0, 10, 100.0);
    tl.recordUtilization(2500, 0, 50.0);
    tl.recordRequest(500, 2.0);
    tl.recordRequest(2400, 4.0);
    tl.recordDrop(1500);
    tl.finish(3000);

    ASSERT_EQ(tl.windows().size(), 3u);
    const auto &w = tl.windows();
    EXPECT_DOUBLE_EQ(w[0].cuBusyIntegral, 10.0 * 1000);
    EXPECT_DOUBLE_EQ(w[1].cuBusyIntegral, 10.0 * 1000);
    // Third window: 10 CUs for 500 ns, then 0 CUs for 500 ns.
    EXPECT_DOUBLE_EQ(w[2].cuBusyIntegral, 10.0 * 500);
    EXPECT_DOUBLE_EQ(w[2].wattsIntegral, 100.0 * 500 + 50.0 * 500);
    EXPECT_EQ(w[0].coveredNs, 1000u);
    EXPECT_EQ(w[2].coveredNs, 1000u);
    EXPECT_EQ(w[0].requests, 1u);
    EXPECT_EQ(w[2].requests, 1u);
    EXPECT_EQ(w[1].drops, 1u);
    EXPECT_EQ(tl.endNs(), 3000u);

    // JSON export round-trips through the reader.
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(tl.toJson(), v, err)) << err;
    EXPECT_DOUBLE_EQ(v.find("window_ns")->numberOr(0), 1000.0);
    ASSERT_TRUE(v.find("windows")->isArray());
    ASSERT_EQ(v.find("windows")->arr.size(), 3u);
    const json::Value &w2 = v.find("windows")->arr[2];
    EXPECT_DOUBLE_EQ(w2.find("cu_busy_mean")->numberOr(-1), 5.0);
    EXPECT_DOUBLE_EQ(w2.find("watts_mean")->numberOr(-1), 75.0);
}

TEST(Timeline, MergeOverlaysShardsOntoOneClusterView)
{
    TimelineRecorder a, b;
    a.enable(1000);
    b.enable(1000);
    a.recordUtilization(0, 4, 40.0);
    a.recordIoctl(100);
    a.recordRequest(200, 1.0);
    a.finish(1000);
    b.recordUtilization(0, 6, 60.0);
    b.recordBarrier(300);
    b.recordReconfig(400);
    b.recordElision(500);
    b.finish(1000);

    b.mergeInto(a);
    ASSERT_EQ(a.windows().size(), 1u);
    const TimelineWindow &w = a.windows()[0];
    EXPECT_DOUBLE_EQ(w.cuBusyIntegral, 4000.0 + 6000.0);
    EXPECT_EQ(w.coveredNs, 1000u); // max, not sum (overlay)
    EXPECT_EQ(w.ioctls, 1u);
    EXPECT_EQ(w.barriers, 1u);
    EXPECT_EQ(w.reconfigs, 1u);
    EXPECT_EQ(w.elisions, 1u);
    EXPECT_EQ(w.requests, 1u);
}

// ---- phase breakdown reconciles with e2e latency ------------------

OpenLoopConfig
smallOpenLoop()
{
    OpenLoopConfig cfg;
    cfg.model = "shufflenet";
    cfg.numWorkers = 2;
    cfg.arrivalRatePerSec = 400;
    cfg.warmupNs = ticksFromMs(20);
    cfg.measureNs = ticksFromMs(200);
    return cfg;
}

double
percentileMean(const MetricsRegistry &m, const std::string &name)
{
    return const_cast<MetricsRegistry &>(m).percentiles(name).mean();
}

TEST(PhaseBreakdown, SumsTileEndToEndLatencyOpenLoop)
{
    ObsContext obs;
    obs.timeline.enable(10'000'000);
    OpenLoopConfig cfg = smallOpenLoop();
    cfg.obs = &obs;
    const OpenLoopResult r = OpenLoopServer(cfg).run();
    ASSERT_GT(r.served, 0u);

    const double sum =
        percentileMean(obs.metrics, "server.phase.queue_wait_ms") +
        percentileMean(obs.metrics, "server.phase.batch_wait_ms") +
        percentileMean(obs.metrics, "server.phase.execute_ms") +
        percentileMean(obs.metrics, "server.phase.postprocess_ms");
    const double e2e =
        percentileMean(obs.metrics, "server.latency_ms");
    // The four phases tile [arrival, complete] exactly in ticks;
    // only double rounding separates the sums.
    EXPECT_NEAR(sum, e2e, 1e-9 * std::max(1.0, e2e));

    // The timeline saw every completion and the device fed power.
    std::uint64_t timeline_requests = 0;
    double covered = 0;
    for (const TimelineWindow &w : obs.timeline.windows()) {
        timeline_requests += w.requests;
        covered += static_cast<double>(w.coveredNs);
    }
    EXPECT_EQ(
        timeline_requests,
        static_cast<std::uint64_t>(
            obs.metrics.percentiles("server.latency_ms").count()));
    EXPECT_GT(covered, 0.0);
}

TEST(PhaseBreakdown, ClusterRunWithSampledTraceReconciles)
{
    ObsContext obs;
    obs.timeline.enable(10'000'000);
    obs.trace.setSample(50);
    ClusterConfig cfg;
    cfg.numShards = 2;
    cfg.workersPerShard = 2;
    cfg.models = {"shufflenet"};
    cfg.arrivalRatePerSec = 400;
    cfg.warmupNs = ticksFromMs(20);
    cfg.measureNs = ticksFromMs(200);
    cfg.obs = &obs;
    const ClusterResult r = ClusterServer(cfg).run();
    ASSERT_GT(r.served, 0u);

    const double sum =
        percentileMean(obs.metrics, "server.phase.queue_wait_ms") +
        percentileMean(obs.metrics, "server.phase.batch_wait_ms") +
        percentileMean(obs.metrics, "server.phase.execute_ms") +
        percentileMean(obs.metrics, "server.phase.postprocess_ms");
    const double e2e =
        percentileMean(obs.metrics, "server.latency_ms");
    EXPECT_NEAR(sum, e2e, 1e-9 * std::max(1.0, e2e));

    // Sampling bounded the request records: far fewer request spans
    // than requests served, but the kept ones carry flow arrows.
    std::size_t spans = 0, flows = 0;
    for (const TraceRecord &rec : obs.trace.records()) {
        if (rec.kind == TraceEventKind::RequestSpan)
            ++spans;
        if (rec.kind == TraceEventKind::RequestFlow)
            ++flows;
    }
    EXPECT_LT(spans, static_cast<std::size_t>(r.served) / 10);
    EXPECT_GT(flows, 0u);

    // Shard timelines merged: device coverage and protocol activity
    // arrive from the shards, requests from the cluster frontend.
    std::uint64_t requests = 0;
    double covered = 0;
    for (const TimelineWindow &w : obs.timeline.windows()) {
        requests += w.requests;
        covered += static_cast<double>(w.coveredNs);
    }
    EXPECT_GT(requests, 0u);
    EXPECT_GT(covered, 0.0);

    // Kernel attribution rolled up under the shard prefixes.
    const std::string snapshot = obs.metrics.toJson();
    EXPECT_NE(snapshot.find("cluster.shard0.gpu.kernel."),
              std::string::npos);
}

// ---- streaming export ---------------------------------------------

TEST(TraceStreaming, StreamedFileMatchesRetainedRecords)
{
    const std::string path =
        ::testing::TempDir() + "/krisp_stream_trace.json";

    auto run = [](ObsContext &obs) {
        OpenLoopConfig cfg;
        cfg.model = "shufflenet";
        cfg.numWorkers = 2;
        cfg.arrivalRatePerSec = 200;
        cfg.warmupNs = ticksFromMs(10);
        cfg.measureNs = ticksFromMs(50);
        cfg.obs = &obs;
        return OpenLoopServer(cfg).run();
    };

    ObsContext retained;
    run(retained);
    ASSERT_GT(retained.trace.size(), 0u);

    ObsContext streamed;
    ASSERT_TRUE(streamed.trace.openStream(path));
    run(streamed);
    EXPECT_TRUE(streamed.trace.streaming());
    EXPECT_EQ(streamed.trace.size(), 0u); // nothing retained
    streamed.trace.closeStream();

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream text;
    text << in.rdbuf();
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(text.str(), v, err)) << err;
    const json::Value *events = v.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    std::size_t data_events = 0;
    for (const json::Value &ev : events->arr) {
        const json::Value *ph = ev.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->stringOr("") != "M")
            ++data_events;
    }
    EXPECT_EQ(data_events, retained.trace.size());
    std::remove(path.c_str());
}

// ---- harness: byte-identical telemetry for any --jobs -------------

TEST(HarnessTelemetry, ArtifactsAreByteIdenticalAcrossJobs)
{
    ::setenv("KRISP_TIMELINE", "1", 1);
    ::setenv("KRISP_TIMELINE_WINDOW_MS", "5", 1);
    ::setenv("KRISP_TRACE_SAMPLE", "3", 1);

    auto specs = [] {
        std::vector<harness::RunSpec> out;
        for (const char *model : {"shufflenet", "alexnet", "vgg19"}) {
            harness::RunSpec spec;
            spec.tag = model;
            spec.config.workerModels = {model, model};
            spec.config.batch = 4;
            spec.config.warmupRequests = 1;
            spec.config.measuredRequests = 3;
            spec.collectMetrics = true;
            spec.collectTrace = true;
            out.push_back(std::move(spec));
        }
        return out;
    };
    auto seq = harness::runAll(specs(), 1);
    auto par = harness::runAll(specs(), 8);

    ::unsetenv("KRISP_TIMELINE");
    ::unsetenv("KRISP_TIMELINE_WINDOW_MS");
    ::unsetenv("KRISP_TRACE_SAMPLE");

    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        ASSERT_NE(seq[i].obs, nullptr);
        ASSERT_NE(par[i].obs, nullptr);
        EXPECT_EQ(seq[i].obs->metrics.toJson(),
                  par[i].obs->metrics.toJson())
            << "metrics diverged for " << seq[i].tag;
        EXPECT_EQ(seq[i].obs->timeline.toJson(),
                  par[i].obs->timeline.toJson())
            << "timeline diverged for " << seq[i].tag;
        EXPECT_EQ(seq[i].obs->trace.toChromeJson(),
                  par[i].obs->trace.toChromeJson())
            << "trace diverged for " << seq[i].tag;
        EXPECT_TRUE(seq[i].obs->timeline.enabled());
        EXPECT_EQ(seq[i].obs->trace.sample(), 3u);
    }
}

// ---- json reader --------------------------------------------------

TEST(JsonParse, ReadsScalarsContainersAndEscapes)
{
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(
        R"({"a":[1,-2.5,true,false,null],"s":"q\" \u0041\u00e9\ud83d\ude00","n":{"x":3e2}})",
        v, err))
        << err;
    ASSERT_TRUE(v.isObject());
    const json::Value *a = v.find("a");
    ASSERT_TRUE(a != nullptr && a->isArray());
    ASSERT_EQ(a->arr.size(), 5u);
    EXPECT_DOUBLE_EQ(a->arr[0].numberOr(0), 1.0);
    EXPECT_DOUBLE_EQ(a->arr[1].numberOr(0), -2.5);
    EXPECT_TRUE(a->arr[2].boolean);
    EXPECT_TRUE(a->arr[4].isNull());
    EXPECT_EQ(v.find("s")->stringOr(""),
              "q\" A\xc3\xa9\xf0\x9f\x98\x80");
    EXPECT_DOUBLE_EQ(v.find("n", "x")->numberOr(0), 300.0);

    EXPECT_FALSE(json::parse("{\"a\":}", v, err));
    EXPECT_FALSE(json::parse("[1,2", v, err));
    EXPECT_FALSE(json::parse("7 trailing", v, err));
    EXPECT_FALSE(json::parse("\"\\ud800\"", v, err));
}

// ---- SLO attainment math ------------------------------------------

json::Value
histFixture()
{
    // lo=0, hi=100, 10 bins of 10 requests each, 5 underflow
    // (attained) and 5 overflow (missed): total 110.
    json::Value v;
    std::string err;
    EXPECT_TRUE(json::parse(
        R"({"lo":0,"hi":100,"total":110,"underflow":5,"overflow":5,)"
        R"("bins":[10,10,10,10,10,10,10,10,10,10]})",
        v, err))
        << err;
    return v;
}

TEST(SloAttainment, InterpolatesInsideTheStraddlingBin)
{
    const json::Value hist = histFixture();
    // Deadline at 25 ms: underflow + 2 full bins + half of bin 2.
    EXPECT_NEAR(sloAttainment(hist, 25.0), (5 + 20 + 5) / 110.0,
                1e-12);
    // On an exact bin edge there is no fractional part.
    EXPECT_NEAR(sloAttainment(hist, 50.0), (5 + 50) / 110.0, 1e-12);
    // Below lo only the underflow attained; at/above hi only the
    // overflow missed.
    EXPECT_NEAR(sloAttainment(hist, -1.0), 5 / 110.0, 1e-12);
    EXPECT_NEAR(sloAttainment(hist, 100.0), 105 / 110.0, 1e-12);
    EXPECT_NEAR(sloAttainment(hist, 500.0), 105 / 110.0, 1e-12);

    json::Value empty;
    std::string err;
    ASSERT_TRUE(json::parse(R"({"lo":0,"hi":1,"total":0,"bins":[0]})",
                            empty, err));
    EXPECT_LT(sloAttainment(empty, 0.5), 0.0);
}

TEST(ReportResilience, RendersClusterAccountingWhenPresent)
{
    // A resilient cluster run's snapshot gets the full section:
    // fate partition, conservation verdict, recovery counters.
    ObsContext obs;
    ClusterConfig cfg;
    cfg.numShards = 2;
    cfg.models = {"squeezenet"};
    cfg.workersPerShard = 2;
    cfg.arrivalRatePerSec = 400.0;
    cfg.warmupNs = ticksFromMs(50);
    cfg.measureNs = ticksFromMs(300);
    cfg.obs = &obs;
    cfg.resilience.enabled = true;
    cfg.faults.shardCrashRatePerSec = 4.0;
    cfg.faults.shardRestartNs = ticksFromMs(15.0);
    ClusterServer(cfg).run();

    json::Value metrics;
    std::string err;
    ASSERT_TRUE(json::parse(obs.metrics.toJson(), metrics, err))
        << err;
    const std::string report =
        generateReport(metrics, nullptr, {}, ReportOptions{});
    EXPECT_NE(report.find("== resilience =="), std::string::npos);
    EXPECT_NE(report.find("conservation: OK"), std::string::npos);
    EXPECT_NE(report.find("shard crashes"), std::string::npos);
    EXPECT_NE(report.find("warm restarts"), std::string::npos);
    EXPECT_EQ(report.find("single-GPU snapshot"), std::string::npos);

    // A single-GPU snapshot (no cluster.resilience.* gauges) gets
    // the placeholder instead of a fabricated table.
    json::Value empty;
    ASSERT_TRUE(json::parse(R"({"gauges":{}})", empty, err)) << err;
    const std::string placeholder =
        generateReport(empty, nullptr, {}, ReportOptions{});
    EXPECT_NE(placeholder.find("single-GPU snapshot"),
              std::string::npos);
}

// ---- golden krisp-report ------------------------------------------

void
compareWithGolden(const std::string &name, const std::string &actual)
{
    const std::string path =
        std::string(KRISP_GOLDEN_DIR) + "/" + name;
    const char *env = std::getenv("KRISP_UPDATE_GOLDEN");
    if (env != nullptr && env[0] == '1') {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << actual;
        return;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " (regenerate with KRISP_UPDATE_GOLDEN=1)";
    std::ostringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(expected.str(), actual)
        << "golden mismatch for " << name
        << "; if the change is intended, rerun with "
           "KRISP_UPDATE_GOLDEN=1 and commit the new snapshot";
}

TEST(Golden, KrispReportMini)
{
    // Deterministic serving run with full telemetry...
    ObsContext obs;
    obs.timeline.enable(10'000'000);
    OpenLoopConfig cfg = smallOpenLoop();
    cfg.obs = &obs;
    OpenLoopServer(cfg).run();

    json::Value metrics, timeline, bench;
    std::string err;
    ASSERT_TRUE(json::parse(obs.metrics.toJson(), metrics, err))
        << err;
    ASSERT_TRUE(json::parse(obs.timeline.toJson(), timeline, err))
        << err;
    // ...plus the fig12_mini metrics snapshot as a bench appendix.
    ASSERT_TRUE(json::parseFile(std::string(KRISP_GOLDEN_DIR) +
                                    "/fig12_mini.json",
                                bench, err))
        << err;

    ReportOptions opts;
    opts.sloMs = 25.0;
    opts.topK = 5;
    const std::string report = generateReport(
        metrics, &timeline, {{"fig12_mini", std::move(bench)}},
        opts);
    compareWithGolden("report_mini.txt", report);
}

} // namespace
} // namespace krisp
