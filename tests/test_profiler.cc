/**
 * @file
 * Tests of kernel- and model-level profiling: min-CU search, sweep
 * masks, kneepoints, and the Required-CUs database fill.
 */

#include <gtest/gtest.h>

#include "models/model_zoo.hh"
#include "profile/model_profiler.hh"

namespace krisp
{
namespace
{

const GpuConfig gpu = GpuConfig::mi50();

KernelDescriptor
computeKernel(unsigned wgs, double wg_ns, unsigned sat)
{
    KernelDescriptor d;
    d.name = "synthetic";
    d.numWorkgroups = wgs;
    d.wgDurationNs = wg_ns;
    d.saturationWgsPerCu = sat;
    return d;
}

TEST(KernelProfiler, SweepMasksAreConservedAndSized)
{
    KernelProfiler prof(gpu);
    for (unsigned n = 1; n <= 60; ++n) {
        const CuMask m = prof.sweepMask(n);
        EXPECT_EQ(m.count(), n);
        // Conserved: fewest SEs.
        EXPECT_EQ(m.activeSeCount(gpu.arch), (n + 14) / 15);
    }
}

TEST(KernelProfiler, MinCusBounded)
{
    KernelProfiler prof(gpu);
    const auto d = computeKernel(6000, 10.0, 1);
    const unsigned mc = prof.minCus(d);
    EXPECT_GE(mc, 1u);
    EXPECT_LE(mc, 60u);
}

TEST(KernelProfiler, SaturationLimitedKernelHasLowMinCus)
{
    KernelProfiler prof(gpu);
    // 48 WGs, saturation 4 -> ~12 CUs suffice.
    const auto d = computeKernel(48, 5000.0, 4);
    const unsigned mc = prof.minCus(d);
    EXPECT_LE(mc, 14u);
    EXPECT_GE(mc, 8u);
}

TEST(KernelProfiler, DeviceFillingKernelNeedsMostCus)
{
    KernelProfiler prof(gpu);
    const auto d = computeKernel(60000, 100.0, 1);
    EXPECT_GE(prof.minCus(d), 50u);
}

TEST(KernelProfiler, TinyKernelToleratesAlmostAnything)
{
    KernelProfiler prof(gpu);
    // One workgroup: launch overhead dominates.
    const auto d = computeKernel(1, 100.0, 1);
    EXPECT_LE(prof.minCus(d), 2u);
}

TEST(KernelProfiler, MemoryBoundKernelPlateaus)
{
    KernelProfiler prof(gpu);
    KernelDescriptor d = computeKernel(10000, 1.0, 1);
    d.bytes = 100e6; // ~100 us at full bandwidth
    d.issueFactor = 1.5;
    const unsigned mc = prof.minCus(d);
    // Plateau ends near 1024 / (34 * 1.5) ~ 20 CUs.
    EXPECT_LE(mc, 26u);
    EXPECT_GE(mc, 14u);
}

TEST(KernelProfiler, LatencyIncludesLaunchOverhead)
{
    KernelProfiler prof(gpu);
    const auto d = computeKernel(60, 100.0, 1);
    const double lat = prof.latencyNs(d, 60);
    EXPECT_GE(lat, static_cast<double>(gpu.packetProcessNs +
                                       gpu.kernelLaunchOverheadNs));
}

TEST(KernelProfiler, ProfileIntoFillsDatabaseOnce)
{
    ModelZoo zoo(gpu.arch);
    KernelProfiler prof(gpu);
    PerfDatabase db;
    const auto &seq = zoo.kernels("squeezenet", 32);
    prof.profileInto(db, seq);
    const std::size_t size_once = db.size();
    EXPECT_GT(size_once, 0u);
    EXPECT_LE(size_once, seq.size());
    // Idempotent.
    prof.profileInto(db, seq);
    EXPECT_EQ(db.size(), size_once);
    // Every kernel resolvable.
    for (const auto &k : seq)
        EXPECT_TRUE(db.minCus(*k).has_value());
}

TEST(KernelProfiler, Deterministic)
{
    ModelZoo zoo(gpu.arch);
    KernelProfiler a(gpu), b(gpu);
    for (const auto &k : zoo.kernels("alexnet", 32))
        EXPECT_EQ(a.minCus(*k), b.minCus(*k));
}

TEST(ModelProfiler, LatencyDecreasesWithCus)
{
    ModelZoo zoo(gpu.arch);
    KernelProfiler kprof(gpu);
    ModelProfiler mprof(kprof);
    const auto &seq = zoo.kernels("resnet152", 32);
    const double l10 = mprof.modelLatencyNs(seq, 10);
    const double l30 = mprof.modelLatencyNs(seq, 30);
    const double l60 = mprof.modelLatencyNs(seq, 60);
    EXPECT_GT(l10, l30);
    EXPECT_GE(l30, l60 * 0.999);
}

TEST(ModelProfiler, RightSizeWithinDevice)
{
    ModelZoo zoo(gpu.arch);
    KernelProfiler kprof(gpu);
    ModelProfiler mprof(kprof);
    for (const auto &info : ModelZoo::workloads()) {
        const unsigned rs = mprof.rightSizeCus(zoo.kernels(info.name,
                                                           32));
        EXPECT_GE(rs, 1u) << info.name;
        EXPECT_LE(rs, 60u) << info.name;
    }
}

TEST(ModelProfiler, RightSizeOrderingMatchesPaperExtremes)
{
    // The paper's key qualitative fact: albert is the most tolerant,
    // vgg19 and resnext101 the least (Table III).
    ModelZoo zoo(gpu.arch);
    KernelProfiler kprof(gpu);
    ModelProfiler mprof(kprof);
    const unsigned albert = mprof.rightSizeCus(zoo.kernels("albert",
                                                           32));
    const unsigned vgg = mprof.rightSizeCus(zoo.kernels("vgg19", 32));
    const unsigned resnext =
        mprof.rightSizeCus(zoo.kernels("resnext101", 32));
    const unsigned shuffle =
        mprof.rightSizeCus(zoo.kernels("shufflenet", 32));
    EXPECT_LT(albert, vgg);
    EXPECT_LT(albert, resnext);
    EXPECT_LT(shuffle, vgg);
    EXPECT_GE(vgg, 45u);
    EXPECT_LE(albert, 20u);
}

TEST(ModelProfiler, SweepCoversAllSizesAndIsConsistent)
{
    ModelZoo zoo(gpu.arch);
    KernelProfiler kprof(gpu);
    ModelProfiler mprof(kprof);
    const auto &seq = zoo.kernels("squeezenet", 32);
    const auto sweep = mprof.sweep(seq);
    ASSERT_EQ(sweep.size(), 60u);
    for (unsigned i = 0; i < 60; ++i) {
        EXPECT_EQ(sweep[i].cus, i + 1);
        EXPECT_GT(sweep[i].latencyNs, 0.0);
        EXPECT_NEAR(sweep[i].relativeThroughput,
                    sweep[59].latencyNs / sweep[i].latencyNs, 1e-9);
    }
    EXPECT_NEAR(sweep[59].relativeThroughput, 1.0, 1e-9);
}

TEST(ModelProfiler, PaperRightSizesApproximatelyReproduced)
{
    // Reproduction band: within +/- 12 CUs (or 35%) of Table III.
    ModelZoo zoo(gpu.arch);
    KernelProfiler kprof(gpu);
    ModelProfiler mprof(kprof);
    for (const auto &info : ModelZoo::workloads()) {
        const unsigned rs =
            mprof.rightSizeCus(zoo.kernels(info.name, 32));
        const double diff = std::abs(
            static_cast<double>(rs) -
            static_cast<double>(info.paperRightSizeCus));
        EXPECT_LE(diff, std::max(12.0,
                                 0.35 * info.paperRightSizeCus))
            << info.name << ": got " << rs << ", paper "
            << info.paperRightSizeCus;
    }
}

TEST(ModelProfilerDeath, EmptySequenceRejected)
{
    KernelProfiler kprof(gpu);
    ModelProfiler mprof(kprof);
    EXPECT_EXIT(mprof.modelLatencyNs({}, 60),
                ::testing::ExitedWithCode(1), "empty");
}

} // namespace
} // namespace krisp
