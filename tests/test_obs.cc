/**
 * @file
 * Unit tests for the observability subsystem: trace sink event
 * ordering and export formats, metrics registry lifecycle, and the
 * two system-level guarantees — byte-identical traces across
 * identical runs, and identical simulated-time results with the
 * tracing enabled or absent.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.hh"
#include "server/inference_server.hh"

namespace krisp
{
namespace
{

// ---- minimal JSON parser (validation only) ----------------------
//
// Recursive-descent parser for the subset of RFC 8259 the exporters
// emit. Parsing back the generated output is the well-formedness
// check; the structural assertions below use the returned tree.

struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };
    Type type = Type::Null;
    double number = 0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : object)
            if (k == key)
                return &v;
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    bool
    parse(JsonValue &out)
    {
        pos_ = 0;
        if (!value(out))
            return false;
        skipWs();
        return pos_ == text_.size(); // no trailing garbage
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    value(JsonValue &out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{': return object(out);
          case '[': return array(out);
          case '"':
            out.type = JsonValue::Type::String;
            return string(out.string);
          case 't':
            out.type = JsonValue::Type::Bool;
            out.number = 1;
            return literal("true");
          case 'f':
            out.type = JsonValue::Type::Bool;
            return literal("false");
          case 'n':
            return literal("null");
          default: return number(out);
        }
    }

    bool
    string(std::string &out)
    {
        if (text_[pos_] != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
                switch (text_[pos_]) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u':
                    if (pos_ + 4 >= text_.size())
                        return false;
                    pos_ += 4; // escaped control char; drop it
                    break;
                  default: return false;
                }
                ++pos_;
            } else {
                out += text_[pos_++];
            }
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return false;
        out.type = JsonValue::Type::Number;
        out.number = std::stod(text_.substr(start, pos_ - start));
        return true;
    }

    bool
    array(JsonValue &out)
    {
        out.type = JsonValue::Type::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue elem;
            if (!value(elem))
                return false;
            out.array.push_back(std::move(elem));
            skipWs();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    object(JsonValue &out)
    {
        out.type = JsonValue::Type::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (pos_ >= text_.size() || !string(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return false;
            ++pos_;
            JsonValue val;
            if (!value(val))
                return false;
            out.object.emplace_back(std::move(key), std::move(val));
            skipWs();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

// ---- shared fixture: one tiny traced server run ------------------

ServerConfig
tracedConfig(ObsContext *obs)
{
    ServerConfig cfg;
    cfg.workerModels = {"shufflenet"};
    cfg.batch = 8;
    cfg.policy = PartitionPolicy::KrispIsolated;
    cfg.enforcement = EnforcementMode::Emulated;
    cfg.warmupRequests = 1;
    cfg.measuredRequests = 2;
    cfg.obs = obs;
    return cfg;
}

// ---- trace sink basics ------------------------------------------

TEST(TraceSink, RecordsInInsertionOrderWithStableSeq)
{
    TraceSink sink;
    sink.rightSize("gemm", 12, "native");
    sink.maskReconfig(0, 0xffull, 8);
    sink.barrierInject(0, "B1-drain");
    sink.span(TraceEventKind::KernelSpan, "k", tracePidGpu, 0, 100,
              250);

    ASSERT_EQ(sink.size(), 4u);
    const auto &recs = sink.records();
    for (std::size_t i = 0; i < recs.size(); ++i)
        EXPECT_EQ(recs[i].seq, i);
    EXPECT_EQ(recs[0].kind, TraceEventKind::RightSize);
    EXPECT_EQ(recs[3].phase, 'X');
    EXPECT_EQ(recs[3].ts, 100u);
    EXPECT_EQ(recs[3].dur, 150u);
}

TEST(TraceSink, DisabledSinkRecordsNothing)
{
    TraceSink sink;
    sink.setEnabled(false);
    sink.rightSize("gemm", 12, "native");
    sink.maskReconfig(0, 0xffull, 8);
    EXPECT_EQ(sink.size(), 0u);
}

TEST(TraceSink, MacroSkipsArgumentEvaluationWhenDisabled)
{
    TraceSink sink;
    sink.setEnabled(false);
    TraceSink *ptr = &sink;
    int evals = 0;
    auto name = [&] {
        ++evals;
        return std::string("gemm");
    };
    KRISP_TRACE_EVENT(ptr, rightSize(name(), 12, "native"));
    EXPECT_EQ(evals, 0);

    TraceSink *null_sink = nullptr;
    KRISP_TRACE_EVENT(null_sink, rightSize(name(), 12, "native"));
    EXPECT_EQ(evals, 0);

    sink.setEnabled(true);
    KRISP_TRACE_EVENT(ptr, rightSize(name(), 12, "native"));
    EXPECT_EQ(evals, 1);
    EXPECT_EQ(sink.size(), 1u);
}

TEST(TraceSink, ClearDropsRecords)
{
    TraceSink sink;
    sink.barrierProcess(3, 1);
    EXPECT_EQ(sink.size(), 1u);
    sink.clear();
    EXPECT_EQ(sink.size(), 0u);
    sink.barrierProcess(3, 1);
    EXPECT_EQ(sink.records()[0].seq, 0u); // seq restarts after clear
}

TEST(TraceSink, RecordLimitStopsRecording)
{
    TraceSink sink;
    sink.setLimit(2);
    sink.barrierProcess(0, 1);
    sink.barrierProcess(0, 1);
    sink.barrierProcess(0, 1);
    EXPECT_EQ(sink.size(), 2u);
}

TEST(TraceSinkDeath, SpanEndBeforeStart)
{
    TraceSink sink;
    EXPECT_DEATH(sink.span(TraceEventKind::KernelSpan, "k",
                           tracePidGpu, 0, /*start=*/10, /*end=*/5),
                 "ends before");
}

TEST(TraceSink, CsvHasHeaderAndOneLinePerRecord)
{
    TraceSink sink;
    sink.rightSize("gemm", 12, "native");
    sink.ioctlSubmit(1);
    std::ostringstream os;
    sink.writeCsv(os);
    const std::string csv = os.str();
    EXPECT_NE(csv.find("seq,ts_ns,dur_ns,kind,phase,pid,tid,name"),
              std::string::npos);
    std::size_t lines = 0;
    for (const char c : csv)
        if (c == '\n')
            ++lines;
    EXPECT_EQ(lines, 1 + sink.size());
}

// ---- Chrome JSON export -----------------------------------------

TEST(TraceSink, ChromeJsonParsesBackAndCarriesEvents)
{
    ObsContext obs;
    InferenceServer(tracedConfig(&obs)).run();
    ASSERT_GT(obs.trace.size(), 0u);

    JsonValue root;
    ASSERT_TRUE(JsonParser(obs.trace.toChromeJson()).parse(root));
    ASSERT_EQ(root.type, JsonValue::Type::Object);
    const JsonValue *unit = root.find("displayTimeUnit");
    ASSERT_NE(unit, nullptr);
    EXPECT_EQ(unit->string, "ns");

    const JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->type, JsonValue::Type::Array);
    // Records plus at least one metadata event per used track.
    EXPECT_GT(events->array.size(), obs.trace.size());

    bool saw_metadata = false, saw_kernel_span = false;
    bool saw_mask_reconfig = false, saw_request_span = false;
    for (const auto &ev : events->array) {
        ASSERT_EQ(ev.type, JsonValue::Type::Object);
        // Every event carries the mandatory Chrome fields.
        ASSERT_NE(ev.find("name"), nullptr);
        ASSERT_NE(ev.find("ph"), nullptr);
        ASSERT_NE(ev.find("pid"), nullptr);
        const std::string &ph = ev.find("ph")->string;
        if (ph == "M") {
            saw_metadata = true;
            continue;
        }
        ASSERT_NE(ev.find("ts"), nullptr);
        ASSERT_NE(ev.find("tid"), nullptr);
        // The taxonomy entry rides in args.kind on every event.
        const JsonValue *args = ev.find("args");
        ASSERT_NE(args, nullptr);
        ASSERT_NE(args->find("kind"), nullptr);
        const std::string &kind = args->find("kind")->string;
        if (kind == "kernel.span") {
            saw_kernel_span = true;
            EXPECT_EQ(ph, "X");
            ASSERT_NE(ev.find("dur"), nullptr);
            EXPECT_NE(args->find("cus"), nullptr);
            EXPECT_NE(args->find("mask"), nullptr);
        } else if (kind == "mask.reconfig") {
            saw_mask_reconfig = true;
        } else if (kind == "request.span") {
            saw_request_span = true;
            // Worker/model attribution on every request span.
            ASSERT_NE(args->find("worker"), nullptr);
            ASSERT_NE(args->find("model"), nullptr);
            EXPECT_EQ(args->find("model")->string, "shufflenet");
        }
    }
    EXPECT_TRUE(saw_metadata);
    EXPECT_TRUE(saw_kernel_span);
    EXPECT_TRUE(saw_mask_reconfig); // emulated enforcement reconfigs
    EXPECT_TRUE(saw_request_span);
}

TEST(TraceSink, ChromeJsonTimestampsAreNonDecreasingPerTrack)
{
    ObsContext obs;
    InferenceServer(tracedConfig(&obs)).run();
    Tick last_recorded = 0;
    for (const auto &rec : obs.trace.records()) {
        // Events are recorded in simulated-time order.
        EXPECT_GE(rec.recordedAt, last_recorded);
        last_recorded = rec.recordedAt;
    }
}

// ---- determinism and non-interference ---------------------------

TEST(Obs, IdenticalRunsProduceByteIdenticalTraces)
{
    ObsContext a, b;
    InferenceServer(tracedConfig(&a)).run();
    InferenceServer(tracedConfig(&b)).run();
    ASSERT_GT(a.trace.size(), 0u);
    EXPECT_EQ(a.trace.toChromeJson(), b.trace.toChromeJson());
    EXPECT_EQ(a.metrics.toJson(), b.metrics.toJson());
}

TEST(Obs, TracingDoesNotChangeSimulatedResults)
{
    ObsContext obs;
    const ServerResult traced =
        InferenceServer(tracedConfig(&obs)).run();
    const ServerResult plain =
        InferenceServer(tracedConfig(nullptr)).run();
    EXPECT_EQ(traced.completed, plain.completed);
    EXPECT_EQ(traced.totalRps, plain.totalRps);
    EXPECT_EQ(traced.maxP95Ms, plain.maxP95Ms);
    EXPECT_EQ(traced.measureSeconds, plain.measureSeconds);
    EXPECT_EQ(traced.energyPerInferenceJ, plain.energyPerInferenceJ);
}

// ---- metrics registry -------------------------------------------

TEST(MetricsRegistry, RegisterOrFetchSharesInstruments)
{
    MetricsRegistry reg;
    Counter &c1 = reg.counter("krisp.launches");
    Counter &c2 = reg.counter("krisp.launches");
    EXPECT_EQ(&c1, &c2);
    c1.inc(3);
    EXPECT_EQ(c2.value(), 3u);
    EXPECT_TRUE(reg.has("krisp.launches"));
    EXPECT_FALSE(reg.has("absent"));
    EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, SnapshotContainsAllInstrumentKinds)
{
    MetricsRegistry reg;
    reg.counter("c").inc(7);
    reg.gauge("g").set(2.5);
    reg.label("l").set("hello");
    reg.accumulator("a").add(1.0);
    reg.accumulator("a").add(3.0);
    reg.percentiles("p").add(10.0);
    reg.histogram("h", 0.0, 10.0, 2).add(4.0);

    JsonValue root;
    ASSERT_TRUE(JsonParser(reg.toJson()).parse(root));
    const JsonValue *counters = root.find("counters");
    ASSERT_NE(counters, nullptr);
    ASSERT_NE(counters->find("c"), nullptr);
    EXPECT_EQ(counters->find("c")->number, 7.0);
    EXPECT_EQ(root.find("gauges")->find("g")->number, 2.5);
    EXPECT_EQ(root.find("labels")->find("l")->string, "hello");
    const JsonValue *acc = root.find("accumulators")->find("a");
    ASSERT_NE(acc, nullptr);
    EXPECT_EQ(acc->find("count")->number, 2.0);
    EXPECT_EQ(acc->find("mean")->number, 2.0);
    const JsonValue *hist = root.find("histograms")->find("h");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->find("total")->number, 1.0);
}

TEST(MetricsRegistry, ResetClearsValuesButKeepsRegistrations)
{
    MetricsRegistry reg;
    reg.counter("c").inc(5);
    reg.gauge("g").set(1.5);
    reg.percentiles("p").add(3.0);
    reg.reset();
    EXPECT_TRUE(reg.has("c"));
    EXPECT_EQ(reg.counter("c").value(), 0u);
    EXPECT_EQ(reg.gauge("g").value(), 0.0);
    EXPECT_TRUE(reg.percentiles("p").empty());
}

TEST(MetricsRegistryDeath, KindMismatchIsFatal)
{
    MetricsRegistry reg;
    reg.counter("x");
    EXPECT_EXIT(reg.gauge("x"), ::testing::ExitedWithCode(1),
                "registered as");
}

TEST(MetricsRegistry, JsonIsDeterministic)
{
    MetricsRegistry a, b;
    // Register in different orders: serialisation is name-ordered.
    a.counter("one").inc(1);
    a.gauge("two").set(2);
    b.gauge("two").set(2);
    b.counter("one").inc(1);
    EXPECT_EQ(a.toJson(), b.toJson());
}

} // namespace
} // namespace krisp
