/**
 * @file
 * Tests of the inference server and experiment harness. Server runs
 * here use small request counts to stay fast; the full-scale numbers
 * live in the bench binaries.
 */

#include <gtest/gtest.h>

#include "server/experiment.hh"

namespace krisp
{
namespace
{

ServerConfig
quickConfig()
{
    ServerConfig cfg;
    cfg.batch = 32;
    cfg.warmupRequests = 2;
    cfg.measuredRequests = 12;
    return cfg;
}

TEST(Policies, NamesAndList)
{
    EXPECT_EQ(allPartitionPolicies().size(), 5u);
    EXPECT_STREQ(partitionPolicyName(PartitionPolicy::MpsDefault),
                 "mps-default");
    EXPECT_STREQ(partitionPolicyName(PartitionPolicy::KrispIsolated),
                 "krisp-i");
    EXPECT_TRUE(isKrispPolicy(PartitionPolicy::KrispOversubscribed));
    EXPECT_FALSE(isKrispPolicy(PartitionPolicy::StaticEqual));
}

TEST(InferenceServer, SingleWorkerProducesSaneResults)
{
    ServerConfig cfg = quickConfig();
    cfg.workerModels = {"squeezenet"};
    InferenceServer server(cfg);
    const ServerResult r = server.run();
    ASSERT_EQ(r.workers.size(), 1u);
    EXPECT_EQ(r.workers[0].completed, cfg.measuredRequests);
    EXPECT_GT(r.totalRps, 0.0);
    EXPECT_GT(r.maxP95Ms, 0.0);
    EXPECT_GT(r.energyPerInferenceJ, 0.0);
    EXPECT_GT(r.avgPowerW, 0.0);
    EXPECT_GT(r.measureSeconds, 0.0);
    EXPECT_FALSE(r.timedOut);
    // Latency at least the isolated model latency + pre/post.
    EXPECT_GT(r.workers[0].meanLatencyMs,
              ticksToMs(cfg.preprocessNs + cfg.postprocessNs));
}

TEST(InferenceServer, DeterministicAcrossRuns)
{
    ServerConfig cfg = quickConfig();
    cfg.workerModels = {"alexnet", "alexnet"};
    cfg.policy = PartitionPolicy::KrispIsolated;
    const ServerResult a = InferenceServer(cfg).run();
    const ServerResult b = InferenceServer(cfg).run();
    EXPECT_DOUBLE_EQ(a.totalRps, b.totalRps);
    EXPECT_DOUBLE_EQ(a.maxP95Ms, b.maxP95Ms);
    EXPECT_DOUBLE_EQ(a.energyPerInferenceJ, b.energyPerInferenceJ);
}

TEST(InferenceServer, TwoWorkersCompleteRequestedCounts)
{
    ServerConfig cfg = quickConfig();
    cfg.workerModels = {"squeezenet", "squeezenet"};
    cfg.policy = PartitionPolicy::StaticEqual;
    const ServerResult r = InferenceServer(cfg).run();
    ASSERT_EQ(r.workers.size(), 2u);
    for (const auto &w : r.workers)
        EXPECT_GE(w.completed, cfg.measuredRequests);
}

TEST(InferenceServer, MixedModelsKeepTheirIdentities)
{
    ServerConfig cfg = quickConfig();
    cfg.workerModels = {"albert", "squeezenet"};
    const ServerResult r = InferenceServer(cfg).run();
    ASSERT_EQ(r.workers.size(), 2u);
    EXPECT_EQ(r.workers[0].model, "albert");
    EXPECT_EQ(r.workers[1].model, "squeezenet");
}

/** Every policy runs end to end on a 2-worker co-location. */
class PolicyRunTest
    : public ::testing::TestWithParam<PartitionPolicy>
{
};

TEST_P(PolicyRunTest, RunsToCompletion)
{
    ServerConfig cfg = quickConfig();
    cfg.measuredRequests = 8;
    cfg.workerModels = {"squeezenet", "squeezenet"};
    cfg.policy = GetParam();
    const ServerResult r = InferenceServer(cfg).run();
    EXPECT_EQ(r.completed, 16u);
    EXPECT_GT(r.totalRps, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyRunTest,
    ::testing::ValuesIn(allPartitionPolicies()),
    [](const ::testing::TestParamInfo<PartitionPolicy> &info) {
        std::string name = partitionPolicyName(info.param);
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(InferenceServer, KrispEmulatedSlowerThanNative)
{
    ServerConfig cfg = quickConfig();
    cfg.measuredRequests = 8;
    cfg.workerModels = {"alexnet"};
    cfg.policy = PartitionPolicy::KrispIsolated;
    cfg.enforcement = EnforcementMode::Native;
    const double native_p95 = InferenceServer(cfg).run().maxP95Ms;
    cfg.enforcement = EnforcementMode::Emulated;
    const double emu_p95 = InferenceServer(cfg).run().maxP95Ms;
    // The emulation overhead L_over is strictly positive.
    EXPECT_GT(emu_p95, native_p95);
}

TEST(ExperimentContext, IsolatedBaselineCached)
{
    ExperimentContext ctx(quickConfig());
    const ServerResult &a = ctx.isolated("squeezenet");
    const ServerResult &b = ctx.isolated("squeezenet");
    EXPECT_EQ(&a, &b);
}

TEST(ExperimentContext, EvaluateNormalisesAgainstIsolated)
{
    ExperimentContext ctx(quickConfig());
    const EvalPoint p =
        ctx.evaluate("squeezenet", PartitionPolicy::MpsDefault, 1);
    // One worker under MPS default *is* the isolated baseline.
    EXPECT_NEAR(p.normalizedRps, 1.0, 0.05);
    EXPECT_NEAR(p.energyRatio, 1.0, 0.05);
    EXPECT_FALSE(p.sloViolated);
    EXPECT_NEAR(p.sloMs, 2.0 * p.p95Ms, 0.1 * p.sloMs);
}

TEST(ExperimentContext, SloRuleIsTwiceIsolatedTail)
{
    ExperimentContext ctx(quickConfig());
    const ServerResult &iso = ctx.isolated("alexnet");
    const EvalPoint p =
        ctx.evaluate("alexnet", PartitionPolicy::StaticEqual, 2);
    EXPECT_DOUBLE_EQ(p.sloMs, 2.0 * iso.maxP95Ms);
    EXPECT_EQ(p.sloViolated, p.p95Ms > p.sloMs);
}

TEST(ExperimentContext, OverlapOverrideOnlyForKrisp)
{
    ExperimentContext ctx(quickConfig());
    EXPECT_EXIT(ctx.evaluateWithOverlap(
                    "squeezenet", PartitionPolicy::StaticEqual, 2, 8),
                ::testing::ExitedWithCode(1), "overlap");
    const EvalPoint p = ctx.evaluateWithOverlap(
        "squeezenet", PartitionPolicy::KrispIsolated, 2, 8);
    EXPECT_GT(p.normalizedRps, 0.0);
}

TEST(ExperimentContext, MixedPairAggregatesNormalisedRps)
{
    ExperimentContext ctx(quickConfig());
    const double agg = ctx.evaluateMixedPair(
        "albert", "squeezenet", PartitionPolicy::KrispIsolated);
    EXPECT_GT(agg, 0.5);
    EXPECT_LT(agg, 4.0);
}

TEST(InferenceServer, KrispBeatsMpsDefaultAtFourWorkers)
{
    // The headline claim, at reduced request counts: KRISP-I beats
    // unrestricted sharing for a contention-heavy model at 4 workers.
    ServerConfig cfg = quickConfig();
    cfg.measuredRequests = 15;
    ExperimentContext ctx(cfg);
    const EvalPoint mps =
        ctx.evaluate("resnet152", PartitionPolicy::MpsDefault, 4);
    const EvalPoint krisp =
        ctx.evaluate("resnet152", PartitionPolicy::KrispIsolated, 4);
    EXPECT_GT(krisp.normalizedRps, mps.normalizedRps);
    EXPECT_LT(krisp.energyPerInferenceJ, mps.energyPerInferenceJ);
}

TEST(InferenceServerDeath, InvalidConfigs)
{
    ServerConfig cfg = quickConfig();
    EXPECT_EXIT({ InferenceServer server(cfg); },
                ::testing::ExitedWithCode(1), "at least one worker");
    cfg.workerModels = {"not-a-model"};
    EXPECT_EXIT({ InferenceServer server(cfg); },
                ::testing::ExitedWithCode(1), "unknown model");
    cfg.workerModels = {"albert"};
    cfg.batch = 0;
    EXPECT_EXIT({ InferenceServer server(cfg); },
                ::testing::ExitedWithCode(1), "batch");
}

} // namespace
} // namespace krisp
