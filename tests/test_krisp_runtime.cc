/**
 * @file
 * Tests of the KRISP interception layer: native kernel-scoped
 * partition instances versus the barrier-packet emulation, including
 * the emulation overhead model L_over (Sec. V-B).
 */

#include <gtest/gtest.h>

#include "core/krisp_runtime.hh"
#include "gpu/gpu_device.hh"
#include "kern/kernel_builder.hh"
#include "sim/event_queue.hh"

namespace krisp
{
namespace
{

const ArchParams arch = ArchParams::mi50();

struct Fixture
{
    EventQueue eq;
    GpuConfig cfg = GpuConfig::mi50();
    GpuDevice device{eq, cfg};
    HipRuntime hip{eq, device};
    PerfDatabase db;
    MaskAllocator alloc{DistributionPolicy::Conserved, 0};

    KernelDescPtr
    kernel(unsigned wgs = 600, double wg_ns = 50.0)
    {
        auto d = std::make_shared<KernelDescriptor>();
        d->name = "k";
        d->numWorkgroups = wgs;
        d->wgDurationNs = wg_ns;
        d->saturationWgsPerCu = 2;
        return d;
    }

    /** Run a sequence through a KrispRuntime; return wall ticks. */
    Tick
    runSequence(KrispRuntime &krisp, Stream &stream,
                const std::vector<KernelDescPtr> &seq)
    {
        const Tick start = eq.now();
        auto sig =
            HsaSignal::create(static_cast<std::int64_t>(seq.size()));
        Tick end = start;
        sig->waitZero([&] { end = eq.now(); });
        for (const auto &k : seq)
            krisp.launch(stream, k, sig);
        eq.run();
        return end - start;
    }
};

TEST(KrispRuntime, NativeModeInstallsAllocator)
{
    Fixture fx;
    FixedSizer sizer(15);
    KrispRuntime krisp(fx.hip, sizer, fx.alloc,
                       EnforcementMode::Native);
    Stream &s = fx.hip.createStream();
    fx.runSequence(krisp, s, {fx.kernel()});
    EXPECT_EQ(fx.device.stats().krispAllocations, 1u);
    EXPECT_EQ(krisp.stats().launches, 1u);
    EXPECT_EQ(krisp.stats().requestedCusTotal, 15u);
    EXPECT_EQ(krisp.stats().emulatedReconfigs, 0u);
}

TEST(KrispRuntime, EmulatedModeReconfiguresQueueMask)
{
    Fixture fx;
    FixedSizer sizer(15);
    KrispRuntime krisp(fx.hip, sizer, fx.alloc,
                       EnforcementMode::Emulated);
    Stream &s = fx.hip.createStream();
    fx.runSequence(krisp, s, {fx.kernel(), fx.kernel()});
    // One queue CU-mask ioctl per kernel launch.
    EXPECT_EQ(krisp.stats().emulatedReconfigs, 2u);
    EXPECT_EQ(fx.hip.ioctlService().completed(), 2u);
    // The stream's queue ends up with the 15-CU mask.
    EXPECT_EQ(s.hsaQueue().cuMask().count(), 15u);
    // No firmware allocations in emulated mode.
    EXPECT_EQ(fx.device.stats().krispAllocations, 0u);
    // Two barrier packets per kernel were processed.
    EXPECT_EQ(fx.device.stats().barriersProcessed, 4u);
}

TEST(KrispRuntime, EmulatedAndNativeUseSamePartitionSize)
{
    Fixture fx;
    FixedSizer sizer(20);
    KrispRuntime native(fx.hip, sizer, fx.alloc,
                        EnforcementMode::Native);
    Stream &sa = fx.hip.createStream();
    fx.runSequence(native, sa, {fx.kernel()});

    MaskAllocator alloc2(DistributionPolicy::Conserved, 0);
    KrispRuntime emulated(fx.hip, sizer, alloc2,
                          EnforcementMode::Emulated);
    Stream &sb = fx.hip.createStream();
    fx.runSequence(emulated, sb, {fx.kernel()});
    EXPECT_EQ(sb.hsaQueue().cuMask().count(), 20u);
}

TEST(KrispRuntime, EmulationOverheadIsPositiveAndPerKernel)
{
    // L_over = L_emu - L_native grows with the number of kernels
    // (each kernel pays barriers + callback + serialised ioctl).
    FixedSizer sizer(60);
    std::vector<Tick> native_t, emu_t;
    for (const int n : {5, 10}) {
        {
            Fixture fx;
            KrispRuntime krisp(fx.hip, sizer, fx.alloc,
                               EnforcementMode::Native);
            Stream &s = fx.hip.createStream();
            std::vector<KernelDescPtr> seq(n, fx.kernel());
            native_t.push_back(fx.runSequence(krisp, s, seq));
        }
        {
            Fixture fx;
            KrispRuntime krisp(fx.hip, sizer, fx.alloc,
                               EnforcementMode::Emulated);
            Stream &s = fx.hip.createStream();
            std::vector<KernelDescPtr> seq(n, fx.kernel());
            emu_t.push_back(fx.runSequence(krisp, s, seq));
        }
    }
    const Tick over5 = emu_t[0] - native_t[0];
    const Tick over10 = emu_t[1] - native_t[1];
    EXPECT_GT(over5, 0u);
    // Per-kernel overhead: doubling kernels ~doubles L_over.
    EXPECT_NEAR(static_cast<double>(over10),
                2.0 * static_cast<double>(over5),
                0.2 * static_cast<double>(over10));
}

TEST(KrispRuntime, EmulatedKernelsStillSerialisedCorrectly)
{
    Fixture fx;
    FixedSizer sizer(30);
    KrispRuntime krisp(fx.hip, sizer, fx.alloc,
                       EnforcementMode::Emulated);
    Stream &s = fx.hip.createStream();
    std::vector<Tick> done;
    for (int i = 0; i < 3; ++i) {
        auto sig = HsaSignal::create(1);
        sig->waitZero([&] { done.push_back(fx.eq.now()); });
        krisp.launch(s, fx.kernel(), sig);
    }
    fx.eq.run();
    ASSERT_EQ(done.size(), 3u);
    EXPECT_LT(done[0], done[1]);
    EXPECT_LT(done[1], done[2]);
    EXPECT_EQ(fx.device.stats().kernelsCompleted, 3u);
}

TEST(KrispRuntime, ProfiledSizerDrivesPerKernelSizes)
{
    Fixture fx;
    auto small = fx.kernel(30, 50.0);  // low parallelism
    auto large = fx.kernel(6000, 5.0); // device filling
    fx.db.setMinCus(small->profileKey(), 8);
    fx.db.setMinCus(large->profileKey(), 55);
    ProfiledSizer sizer(fx.db, 60);
    KrispRuntime krisp(fx.hip, sizer, fx.alloc,
                       EnforcementMode::Native);
    Stream &s = fx.hip.createStream();
    fx.runSequence(krisp, s, {small, large});
    EXPECT_EQ(krisp.stats().requestedCusTotal, 8u + 55u);
    EXPECT_EQ(sizer.misses, 0u);
}

TEST(KrispRuntime, ModeNames)
{
    EXPECT_STREQ(enforcementModeName(EnforcementMode::Native),
                 "native");
    EXPECT_STREQ(enforcementModeName(EnforcementMode::Emulated),
                 "emulated");
}

TEST(KrispRuntimeDeath, NullKernelRejected)
{
    Fixture fx;
    FixedSizer sizer(10);
    KrispRuntime krisp(fx.hip, sizer, fx.alloc,
                       EnforcementMode::Native);
    Stream &s = fx.hip.createStream();
    EXPECT_EXIT(krisp.launch(s, nullptr, nullptr),
                ::testing::ExitedWithCode(1), "null");
}

} // namespace
} // namespace krisp
