/**
 * @file
 * Cross-module integration tests reproducing the paper's qualitative
 * claims end to end on small configurations: distribution-policy
 * spikes (Fig. 8), kernel-wise right-sizing preserving latency while
 * shrinking partitions, emulation overhead scaling (Fig. 12), and
 * the Conserved policy's energy advantage.
 */

#include <gtest/gtest.h>

#include "core/krisp_runtime.hh"
#include "gpu/gpu_device.hh"
#include "kern/kernel_builder.hh"
#include "models/model_zoo.hh"
#include "profile/model_profiler.hh"
#include "sim/event_queue.hh"

namespace krisp
{
namespace
{

const GpuConfig gpu = GpuConfig::mi50();
const ArchParams &arch = gpu.arch;

/** Isolated wall time of one kernel on a given stream mask. */
Tick
runMasked(const KernelDescPtr &kernel, const CuMask &mask)
{
    EventQueue eq;
    GpuDevice device(eq, gpu);
    HsaQueue &q = device.createQueue();
    device.setQueueCuMask(q.id(), mask);
    Tick done = 0;
    auto sig = HsaSignal::create(1);
    sig->waitZero([&] { done = eq.now(); });
    q.push(AqlPacket::dispatch(kernel, sig));
    eq.run();
    return done;
}

KernelDescPtr
vecMulKernel()
{
    // The Fig. 8 microbenchmark: a large streaming multiply.
    return std::make_shared<const KernelDescriptor>(
        makeElementwise(arch, 32u << 20, "vecmul", 2));
}

TEST(Integration, Fig8PackedSpikeAtSixteenCus)
{
    const auto k = vecMulKernel();
    ResourceMonitor idle(arch);
    MaskAllocator packed(DistributionPolicy::Packed);
    MaskAllocator conserved(DistributionPolicy::Conserved);

    const Tick t_packed16 = runMasked(k, packed.allocate(16, idle));
    const Tick t_conserved16 =
        runMasked(k, conserved.allocate(16, idle));
    const Tick t_packed15 = runMasked(k, packed.allocate(15, idle));
    // The 15+1 imbalance makes 16 packed CUs far slower than 16
    // conserved CUs — and even slower than 15 packed CUs.
    EXPECT_GT(t_packed16, 2 * t_conserved16);
    EXPECT_GT(t_packed16, t_packed15);
}

TEST(Integration, Fig8DistributedDipAtFifteenCus)
{
    // A compute-bound kernel exposes the SE imbalance (the streaming
    // vecmul is bandwidth-bound at 15 CUs, which hides it).
    auto k = std::make_shared<KernelDescriptor>();
    k->name = "compute_loop";
    k->numWorkgroups = 6000;
    k->wgDurationNs = 100.0;
    k->saturationWgsPerCu = 1;
    ResourceMonitor idle(arch);
    MaskAllocator distributed(DistributionPolicy::Distributed);
    MaskAllocator conserved(DistributionPolicy::Conserved);
    // 15 CUs distributed = (4,4,4,3): the 3-CU SE bottlenecks.
    const Tick t_dist = runMasked(k, distributed.allocate(15, idle));
    const Tick t_cons = runMasked(k, conserved.allocate(15, idle));
    EXPECT_GT(t_dist, t_cons);
}

TEST(Integration, Fig8PoliciesEqualAtFullDevice)
{
    const auto k = vecMulKernel();
    ResourceMonitor idle(arch);
    for (const auto policy :
         {DistributionPolicy::Packed, DistributionPolicy::Distributed,
          DistributionPolicy::Conserved}) {
        MaskAllocator alloc(policy);
        EXPECT_EQ(runMasked(k, alloc.allocate(60, idle)),
                  runMasked(k, CuMask::full(arch)));
    }
}

TEST(Integration, ConservedSavesEnergyByIdlingSes)
{
    // Sec. IV-C1: at ~40 CUs the Conserved policy powers fewer
    // shader engines than Distributed for the same work.
    const auto k = vecMulKernel();
    ResourceMonitor idle(arch);
    MaskAllocator conserved(DistributionPolicy::Conserved);
    MaskAllocator distributed(DistributionPolicy::Distributed);

    auto energy_for = [&](const CuMask &mask) {
        EventQueue eq;
        GpuDevice device(eq, gpu);
        HsaQueue &q = device.createQueue();
        device.setQueueCuMask(q.id(), mask);
        q.push(AqlPacket::dispatch(k, nullptr));
        eq.run();
        return device.power().energyJoules();
    };
    const double e_cons = energy_for(conserved.allocate(40, idle));
    const double e_dist = energy_for(distributed.allocate(40, idle));
    EXPECT_LT(e_cons, e_dist);
}

TEST(Integration, KrispRightSizingPreservesModelLatency)
{
    // Running a whole model with per-kernel right-sizing should stay
    // within a few percent of the full-GPU latency while requesting
    // far fewer CUs on average.
    EventQueue eq;
    GpuDevice device(eq, gpu);
    HipRuntime hip(eq, device);
    ModelZoo zoo(arch);
    const auto &seq = zoo.kernels("resnet152", 32);

    auto run_seq = [&](Stream &s, KrispRuntime *krisp) {
        const Tick start = eq.now();
        auto sig =
            HsaSignal::create(static_cast<std::int64_t>(seq.size()));
        Tick end = start;
        sig->waitZero([&] { end = eq.now(); });
        for (const auto &k : seq) {
            if (krisp) {
                krisp->launch(s, k, sig);
            } else {
                s.launchWithSignal(k, sig);
            }
        }
        eq.run();
        return end - start;
    };

    Stream &plain = hip.createStream();
    const Tick t_full = run_seq(plain, nullptr);

    KernelProfiler prof(gpu);
    PerfDatabase db;
    prof.profileInto(db, seq);
    ProfiledSizer sizer(db, arch.totalCus());
    MaskAllocator alloc(DistributionPolicy::Conserved, 0);
    KrispRuntime krisp(hip, sizer, alloc, EnforcementMode::Native);
    Stream &sized = hip.createStream();
    const Tick t_krisp = run_seq(sized, &krisp);

    EXPECT_LT(static_cast<double>(t_krisp),
              1.10 * static_cast<double>(t_full));
    const double avg_cus =
        static_cast<double>(krisp.stats().requestedCusTotal) /
        static_cast<double>(krisp.stats().launches);
    EXPECT_LT(avg_cus, 35.0);
}

TEST(Integration, EmulationOverheadScalesWithKernelCount)
{
    // Fig. 12 / Sec. V-B: L_over is proportional to the number of
    // kernel calls, so models with more kernels pay more.
    ModelZoo zoo(arch);
    auto overhead_for = [&](const std::string &model) {
        const auto &seq = zoo.kernels(model, 32);
        auto run_mode = [&](EnforcementMode mode) {
            EventQueue eq;
            GpuDevice device(eq, gpu);
            HipRuntime hip(eq, device);
            FixedSizer sizer(arch.totalCus());
            MaskAllocator alloc(DistributionPolicy::Conserved);
            KrispRuntime krisp(hip, sizer, alloc, mode);
            Stream &s = hip.createStream();
            auto sig = HsaSignal::create(
                static_cast<std::int64_t>(seq.size()));
            Tick end = 0;
            sig->waitZero([&] { end = eq.now(); });
            for (const auto &k : seq)
                krisp.launch(s, k, sig);
            eq.run();
            return end;
        };
        return run_mode(EnforcementMode::Emulated) -
               run_mode(EnforcementMode::Native);
    };
    const Tick over_alexnet = overhead_for("alexnet");   // 34 kernels
    const Tick over_albert = overhead_for("albert");     // 304
    EXPECT_GT(over_alexnet, 0u);
    const double ratio = static_cast<double>(over_albert) /
                         static_cast<double>(over_alexnet);
    EXPECT_NEAR(ratio, 304.0 / 34.0, 2.0);
}

TEST(Integration, IsolationLimitsInterference)
{
    // Two co-located device-filling kernel streams: with isolated
    // per-kernel partitions, per-kernel latency varies less than
    // with full-mask sharing.
    EventQueue eq;
    GpuDevice device(eq, gpu);
    HipRuntime hip(eq, device);
    auto kernel = std::make_shared<const KernelDescriptor>(
        makeGemm(arch, 2048, 2048, 1024));

    KernelProfiler prof(gpu);
    PerfDatabase db;
    prof.profileInto(db, {kernel});
    ProfiledSizer sizer(db, arch.totalCus());
    MaskAllocator alloc(DistributionPolicy::Conserved, 0);
    KrispRuntime krisp(hip, sizer, alloc, EnforcementMode::Native);

    Stream &sa = hip.createStream();
    Stream &sb = hip.createStream();
    auto sig = HsaSignal::create(8);
    for (int i = 0; i < 4; ++i) {
        krisp.launch(sa, kernel, sig);
        krisp.launch(sb, kernel, sig);
    }
    bool done = false;
    sig->waitZero([&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(device.stats().kernelsCompleted, 8u);
    // Isolation kept overlap bounded.
    EXPECT_EQ(alloc.stats().requests, 8u);
}

TEST(Integration, DeviceDrainsToIdleAfterMixedWork)
{
    EventQueue eq;
    GpuDevice device(eq, gpu);
    HipRuntime hip(eq, device);
    ModelZoo zoo(arch);
    Stream &s = hip.createStream();
    const auto &seq = zoo.kernels("squeezenet", 8);
    auto sig =
        HsaSignal::create(static_cast<std::int64_t>(seq.size()));
    for (const auto &k : seq)
        s.launchWithSignal(k, sig);
    bool synced = false;
    s.synchronize([&] { synced = true; });
    eq.run();
    EXPECT_TRUE(synced);
    EXPECT_TRUE(device.idle());
    EXPECT_EQ(device.monitor().residentKernels(), 0u);
}

} // namespace
} // namespace krisp
