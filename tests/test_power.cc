/**
 * @file
 * Unit tests for the board power model: piecewise-constant
 * integration, state composition, measurement windows.
 */

#include <gtest/gtest.h>

#include "gpu/power_model.hh"
#include "sim/event_queue.hh"

namespace krisp
{
namespace
{

PowerParams
testParams()
{
    PowerParams p;
    p.idleW = 40.0;
    p.cuActiveW = 2.0;
    p.seUncoreW = 10.0;
    p.memMaxW = 50.0;
    return p;
}

TEST(PowerModel, StartsAtIdle)
{
    EventQueue eq;
    PowerModel pm(eq, testParams());
    EXPECT_DOUBLE_EQ(pm.currentPowerW(), 40.0);
    EXPECT_DOUBLE_EQ(pm.energyJoules(), 0.0);
}

TEST(PowerModel, PowerComposition)
{
    EventQueue eq;
    PowerModel pm(eq, testParams());
    pm.update(/*busy_cus=*/15, /*active_ses=*/1, /*bw=*/0.0);
    EXPECT_DOUBLE_EQ(pm.currentPowerW(), 40.0 + 30.0 + 10.0);
    pm.update(60, 4, 1.0);
    EXPECT_DOUBLE_EQ(pm.currentPowerW(),
                     40.0 + 120.0 + 40.0 + 50.0);
    pm.update(0, 0, 0.0);
    EXPECT_DOUBLE_EQ(pm.currentPowerW(), 40.0);
}

TEST(PowerModel, IntegratesPiecewise)
{
    EventQueue eq;
    PowerModel pm(eq, testParams());
    // 1 ms idle, then 2 ms at a busier state.
    eq.schedule(ticksFromMs(1.0), [&] { pm.update(30, 2, 0.5); });
    eq.schedule(ticksFromMs(3.0), [&] { pm.update(0, 0, 0.0); });
    eq.run();
    // idle: 40 W x 1 ms = 0.040 J
    // busy: (40 + 60 + 20 + 25) W x 2 ms = 0.290 J
    EXPECT_NEAR(pm.energyJoules(), 0.040 + 0.290, 1e-9);
}

TEST(PowerModel, EnergyMonotone)
{
    EventQueue eq;
    PowerModel pm(eq, testParams());
    double last = 0;
    for (int i = 1; i <= 5; ++i) {
        eq.schedule(ticksFromMs(i), [&] {
            const double e = pm.energyJoules();
            EXPECT_GE(e, last);
            last = e;
        });
    }
    eq.run();
    EXPECT_GT(last, 0.0);
}

TEST(PowerModel, WindowMeasurement)
{
    EventQueue eq;
    PowerModel pm(eq, testParams());
    eq.schedule(ticksFromMs(1.0), [] {});
    eq.run();
    const double mark = pm.energyJoules();
    eq.schedule(ticksFromMs(2.0), [] {});
    eq.run();
    // One extra millisecond at idle.
    EXPECT_NEAR(pm.energySinceJoules(mark), 0.040, 1e-9);
}

TEST(PowerModel, RepeatedReadsDoNotDoubleCount)
{
    EventQueue eq;
    PowerModel pm(eq, testParams());
    eq.schedule(ticksFromMs(1.0), [] {});
    eq.run();
    const double a = pm.energyJoules();
    const double b = pm.energyJoules();
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(PowerModel, BandwidthUtilisationClamped)
{
    EventQueue eq;
    PowerModel pm(eq, testParams());
    pm.update(0, 0, 1.0 + 1e-12); // fp noise tolerated
    EXPECT_DOUBLE_EQ(pm.currentPowerW(), 90.0);
}

TEST(PowerModelDeath, OutOfRangeBandwidth)
{
    EventQueue eq;
    PowerModel pm(eq, testParams());
    EXPECT_DEATH(pm.update(0, 0, 1.5), "out of range");
}

} // namespace
} // namespace krisp
