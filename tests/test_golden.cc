/**
 * @file
 * Golden-file regression tests: miniature fig07 (allocation policies)
 * and fig12 (emulation overhead) configurations rendered to metrics
 * JSON and byte-compared against snapshots in tests/golden/.
 *
 * The simulator is deterministic end to end, so the comparison is
 * exact — any divergence is a real behaviour change. To review and
 * accept one, rerun with KRISP_UPDATE_GOLDEN=1 (the test then
 * rewrites the snapshot and passes) and commit the diff.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/krisp_runtime.hh"
#include "gpu/gpu_device.hh"
#include "models/model_zoo.hh"
#include "obs/metrics.hh"
#include "sim/event_queue.hh"

#ifndef KRISP_GOLDEN_DIR
#error "tests/CMakeLists.txt must define KRISP_GOLDEN_DIR"
#endif

namespace krisp
{
namespace
{

std::string
goldenPath(const std::string &name)
{
    return std::string(KRISP_GOLDEN_DIR) + "/" + name;
}

bool
updateRequested()
{
    const char *env = std::getenv("KRISP_UPDATE_GOLDEN");
    return env != nullptr && env[0] == '1';
}

void
compareWithGolden(const std::string &name, const std::string &actual)
{
    const std::string path = goldenPath(name);
    if (updateRequested()) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << actual;
        return;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " (regenerate with KRISP_UPDATE_GOLDEN=1)";
    std::ostringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(expected.str(), actual)
        << "golden mismatch for " << name
        << "; if the change is intended, rerun with "
           "KRISP_UPDATE_GOLDEN=1 and commit the new snapshot";
}

/** Miniature fig07: 19 CUs under each policy, idle and loaded. */
TEST(Golden, Fig07MiniAllocPolicies)
{
    const ArchParams arch = ArchParams::mi50();
    MetricsRegistry m;
    for (const bool loaded : {false, true}) {
        ResourceMonitor mon(arch);
        if (loaded)
            mon.addKernel(CuMask::firstN(20));
        const std::string scenario = loaded ? "loaded" : "idle";
        for (const auto policy : {DistributionPolicy::Distributed,
                                  DistributionPolicy::Packed,
                                  DistributionPolicy::Conserved}) {
            MaskAllocator alloc(policy);
            const CuMask mask = alloc.allocate(19, mon);
            const std::string prefix =
                scenario + "." + distributionPolicyName(policy);
            for (unsigned se = 0; se < arch.numSe; ++se) {
                m.gauge(prefix + ".se" + std::to_string(se))
                    .set(static_cast<double>(
                        mask.countInSe(arch, se)));
            }
            m.label(prefix + ".mask").set(mask.toString(arch));
        }
    }
    compareWithGolden("fig07_mini.json", m.toJson());
}

/** One full inference pass; the end tick is the model latency. */
Tick
runMiniPass(const std::vector<KernelDescPtr> &seq,
            EnforcementMode mode)
{
    EventQueue eq;
    const GpuConfig gpu = GpuConfig::mi50();
    GpuDevice device(eq, gpu);
    HipRuntime hip(eq, device);
    FixedSizer sizer(gpu.arch.totalCus());
    MaskAllocator alloc(DistributionPolicy::Conserved);
    KrispRuntime krisp(hip, sizer, alloc, mode);
    Stream &s = hip.createStream();
    auto sig =
        HsaSignal::create(static_cast<std::int64_t>(seq.size()));
    Tick end = 0;
    sig->waitZero([&] { end = eq.now(); });
    for (const auto &k : seq)
        krisp.launch(s, k, sig);
    eq.run();
    return end;
}

/** Miniature fig12: native vs emulated latency for two models. */
TEST(Golden, Fig12MiniEmulationOverhead)
{
    ModelZoo zoo(ArchParams::mi50());
    MetricsRegistry m;
    for (const char *model : {"shufflenet", "resnet152"}) {
        const auto &seq = zoo.kernels(model, 8);
        const Tick native =
            runMiniPass(seq, EnforcementMode::Native);
        const Tick emulated =
            runMiniPass(seq, EnforcementMode::Emulated);
        const std::string prefix = model;
        m.gauge(prefix + ".kernels")
            .set(static_cast<double>(seq.size()));
        m.gauge(prefix + ".l_native_ns")
            .set(static_cast<double>(native));
        m.gauge(prefix + ".l_emulated_ns")
            .set(static_cast<double>(emulated));
        m.gauge(prefix + ".l_over_ns")
            .set(static_cast<double>(emulated - native));
    }
    compareWithGolden("fig12_mini.json", m.toJson());
}

} // namespace
} // namespace krisp
