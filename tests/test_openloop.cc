/**
 * @file
 * Tests of the open-loop frontend: Poisson arrivals, dynamic
 * batching, back-pressure and latency accounting.
 */

#include <gtest/gtest.h>

#include "obs/obs.hh"
#include "server/load_generator.hh"

namespace krisp
{
namespace
{

OpenLoopConfig
quickConfig(double rate)
{
    OpenLoopConfig cfg;
    cfg.model = "squeezenet";
    cfg.numWorkers = 2;
    cfg.arrivalRatePerSec = rate;
    cfg.warmupNs = ticksFromMs(100);
    cfg.measureNs = ticksFromMs(800);
    return cfg;
}

TEST(OpenLoop, LightLoadServesEverything)
{
    OpenLoopConfig cfg = quickConfig(50.0);
    const OpenLoopResult r = OpenLoopServer(cfg).run();
    EXPECT_GT(r.served, 10u);
    EXPECT_EQ(r.dropped, 0u);
    EXPECT_NEAR(r.achievedRps, 50.0, 25.0);
    EXPECT_GT(r.p50Ms, 0.0);
    EXPECT_GE(r.p95Ms, r.p50Ms);
    EXPECT_GE(r.p99Ms, r.p95Ms);
    EXPECT_GT(r.energyPerRequestJ, 0.0);
}

TEST(OpenLoop, DeterministicGivenSeed)
{
    OpenLoopConfig cfg = quickConfig(100.0);
    const OpenLoopResult a = OpenLoopServer(cfg).run();
    const OpenLoopResult b = OpenLoopServer(cfg).run();
    EXPECT_EQ(a.served, b.served);
    EXPECT_DOUBLE_EQ(a.p95Ms, b.p95Ms);
    cfg.seed = 99;
    const OpenLoopResult c = OpenLoopServer(cfg).run();
    EXPECT_NE(a.served, c.served);
}

TEST(OpenLoop, BatchesGrowWithLoad)
{
    const OpenLoopResult light =
        OpenLoopServer(quickConfig(50.0)).run();
    const OpenLoopResult heavy =
        OpenLoopServer(quickConfig(2000.0)).run();
    EXPECT_GT(heavy.meanBatchSize, light.meanBatchSize);
    EXPECT_LE(heavy.meanBatchSize, 32.0);
}

TEST(OpenLoop, LatencyGrowsWithLoad)
{
    // Note: mild load can *reduce* queueing delay versus a trickle
    // (full batches assemble faster than the batching timeout), so
    // the comparison needs genuine saturation.
    const OpenLoopResult light =
        OpenLoopServer(quickConfig(50.0)).run();
    const OpenLoopResult heavy =
        OpenLoopServer(quickConfig(15000.0)).run();
    EXPECT_GT(heavy.p95Ms, light.p95Ms);
    EXPECT_GT(heavy.meanQueueDelayMs, light.meanQueueDelayMs);
}

TEST(OpenLoop, OverloadDropsInsteadOfDiverging)
{
    OpenLoopConfig cfg = quickConfig(20000.0);
    cfg.queueCapacity = 64;
    const OpenLoopResult r = OpenLoopServer(cfg).run();
    EXPECT_GT(r.dropRate, 0.0);
    EXPECT_LE(r.dropRate, 1.0);
}

TEST(OpenLoop, BacklogDropThresholdRespected)
{
    // Arrivals beyond queueCapacity are dropped at admission; the
    // drop rate is exactly dropped / (admitted + dropped) over the
    // measurement window.
    OpenLoopConfig cfg = quickConfig(20000.0);
    cfg.queueCapacity = 64;
    const OpenLoopResult r = OpenLoopServer(cfg).run();
    EXPECT_GT(r.dropped, 0u);
    EXPECT_GT(r.arrivals, 0u);
    EXPECT_DOUBLE_EQ(r.dropRate,
                     static_cast<double>(r.dropped) /
                         static_cast<double>(r.arrivals + r.dropped));
    // Served requests can lag admissions (in-flight work at the end
    // of the window) but can never exceed them.
    EXPECT_LE(r.served, r.arrivals);

    // A capacity the offered load never reaches drops nothing.
    cfg = quickConfig(100.0);
    cfg.queueCapacity = 100000;
    const OpenLoopResult calm = OpenLoopServer(cfg).run();
    EXPECT_EQ(calm.dropped, 0u);
    EXPECT_DOUBLE_EQ(calm.dropRate, 0.0);
}

TEST(OpenLoop, DropsCountedInMetricsAndTrace)
{
    ObsContext obs;
    OpenLoopConfig cfg = quickConfig(20000.0);
    cfg.queueCapacity = 64;
    cfg.obs = &obs;
    const OpenLoopResult r = OpenLoopServer(cfg).run();
    EXPECT_GT(r.dropped, 0u);
    // The counter covers the whole run (warmup included), the result
    // only the measurement window.
    EXPECT_GE(obs.metrics.counter("server.dropped").value(),
              r.dropped);
    EXPECT_DOUBLE_EQ(obs.metrics.gauge("server.drop_rate").value(),
                     r.dropRate);
    std::size_t drop_events = 0;
    for (const auto &rec : obs.trace.records())
        drop_events +=
            rec.kind == TraceEventKind::RequestDrop ? 1 : 0;
    EXPECT_GE(drop_events,
              obs.metrics.counter("server.dropped").value());
}

TEST(OpenLoop, PartialBatchTimeoutFiresAtOldestPlusTimeout)
{
    // At a trickle with idle workers, every batch is dispatched by
    // the batching timer, which fires exactly batchTimeoutNs after
    // the oldest queued request arrived — so the worst queueing
    // delay equals the timeout exactly.
    OpenLoopConfig cfg = quickConfig(20.0);
    cfg.batchTimeoutNs = ticksFromMs(1.0);
    const OpenLoopResult r = OpenLoopServer(cfg).run();
    EXPECT_GT(r.served, 0u);
    EXPECT_DOUBLE_EQ(r.maxQueueDelayMs,
                     ticksToMs(cfg.batchTimeoutNs));
}

TEST(OpenLoop, DeadlineSheddingBoundsQueueingDelay)
{
    // Saturating load without shedding: queueing delay diverges.
    OpenLoopConfig cfg = quickConfig(15000.0);
    const OpenLoopResult unbounded = OpenLoopServer(cfg).run();
    // With deadline shedding, requests that aged out are dropped at
    // dispatch and no served request waited past its deadline.
    cfg.requestDeadlineNs = ticksFromMs(20.0);
    const OpenLoopResult shed = OpenLoopServer(cfg).run();
    EXPECT_GT(shed.shedDeadline, 0u);
    EXPECT_LE(shed.maxQueueDelayMs,
              ticksToMs(cfg.requestDeadlineNs));
    EXPECT_LT(shed.maxQueueDelayMs, unbounded.maxQueueDelayMs);
}

TEST(OpenLoop, BatchTimeoutBoundsQueueDelay)
{
    // At a trickle rate, the batching timeout (not batch assembly)
    // governs queueing delay.
    OpenLoopConfig cfg = quickConfig(20.0);
    cfg.batchTimeoutNs = ticksFromMs(1.0);
    const OpenLoopResult r = OpenLoopServer(cfg).run();
    EXPECT_LT(r.meanQueueDelayMs, 3.0);
    EXPECT_LT(r.meanBatchSize, 4.0);
}

TEST(OpenLoop, AllPoliciesRun)
{
    for (const PartitionPolicy policy : allPartitionPolicies()) {
        OpenLoopConfig cfg = quickConfig(100.0);
        cfg.policy = policy;
        const OpenLoopResult r = OpenLoopServer(cfg).run();
        EXPECT_GT(r.served, 0u)
            << partitionPolicyName(policy);
    }
}

TEST(OpenLoop, KrispReducesEnergyPerRequest)
{
    OpenLoopConfig mps = quickConfig(400.0);
    mps.numWorkers = 4;
    OpenLoopConfig krisp = mps;
    krisp.policy = PartitionPolicy::KrispIsolated;
    mps.policy = PartitionPolicy::MpsDefault;
    const OpenLoopResult rm = OpenLoopServer(mps).run();
    const OpenLoopResult rk = OpenLoopServer(krisp).run();
    EXPECT_LT(rk.energyPerRequestJ, rm.energyPerRequestJ * 1.05);
}

TEST(OpenLoopDeath, InvalidConfigs)
{
    OpenLoopConfig cfg = quickConfig(100.0);
    cfg.numWorkers = 0;
    EXPECT_EXIT({ OpenLoopServer s(cfg); },
                ::testing::ExitedWithCode(1), "worker");
    cfg = quickConfig(0.0);
    EXPECT_EXIT({ OpenLoopServer s(cfg); },
                ::testing::ExitedWithCode(1), "rate");
    cfg = quickConfig(100.0);
    cfg.model = "bogus";
    EXPECT_EXIT({ OpenLoopServer s(cfg); },
                ::testing::ExitedWithCode(1), "unknown");
}

} // namespace
} // namespace krisp
