/**
 * @file
 * Unit tests for the HIP-style host runtime: streams, stream-scoped
 * CU masking through the serialised ioctl, and synchronisation.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_device.hh"
#include "hip/hip_runtime.hh"
#include "kern/kernel_builder.hh"
#include "sim/event_queue.hh"

namespace krisp
{
namespace
{

const GpuConfig gpu = GpuConfig::mi50();

struct Fixture
{
    EventQueue eq;
    GpuDevice device{eq, gpu};
    HipRuntime hip{eq, device};

    KernelDescPtr
    kernel(unsigned wgs = 60, double wg_ns = 100.0)
    {
        auto d = std::make_shared<KernelDescriptor>();
        d->name = "k";
        d->numWorkgroups = wgs;
        d->wgDurationNs = wg_ns;
        d->saturationWgsPerCu = 1;
        return d;
    }
};

TEST(HipRuntime, StreamsGetDistinctQueues)
{
    Fixture fx;
    Stream &a = fx.hip.createStream();
    Stream &b = fx.hip.createStream();
    EXPECT_NE(a.id(), b.id());
    EXPECT_NE(a.hsaQueue().id(), b.hsaQueue().id());
    EXPECT_EQ(&fx.hip.stream(a.id()), &a);
}

TEST(HipRuntime, LaunchReturnsCompletionSignal)
{
    Fixture fx;
    Stream &s = fx.hip.createStream();
    auto sig = s.launch(fx.kernel());
    EXPECT_EQ(sig->value(), 1);
    fx.eq.run();
    EXPECT_EQ(sig->value(), 0);
}

TEST(HipRuntime, SynchronizeWaitsForAllPriorWork)
{
    Fixture fx;
    Stream &s = fx.hip.createStream();
    int completed = 0;
    for (int i = 0; i < 3; ++i) {
        auto sig = HsaSignal::create(1);
        sig->waitZero([&] { ++completed; });
        s.launchWithSignal(fx.kernel(), sig);
    }
    bool synced = false;
    s.synchronize([&] {
        synced = true;
        EXPECT_EQ(completed, 3);
    });
    fx.eq.run();
    EXPECT_TRUE(synced);
}

TEST(HipRuntime, SynchronizeOnEmptyStreamStillFires)
{
    Fixture fx;
    Stream &s = fx.hip.createStream();
    bool synced = false;
    s.synchronize([&] { synced = true; });
    fx.eq.run();
    EXPECT_TRUE(synced);
}

TEST(HipRuntime, StreamSetCuMaskTakesIoctlLatency)
{
    Fixture fx;
    Stream &s = fx.hip.createStream();
    Tick applied = 0;
    fx.hip.streamSetCuMask(s, CuMask::firstN(10),
                           [&] { applied = fx.eq.now(); });
    EXPECT_EQ(s.hsaQueue().cuMask().count(), 60u); // not yet
    fx.eq.run();
    EXPECT_EQ(applied, fx.hip.params().ioctlLatencyNs);
    EXPECT_EQ(s.hsaQueue().cuMask().count(), 10u);
}

TEST(HipRuntime, ConcurrentMaskIoctlsSerialise)
{
    Fixture fx;
    Stream &a = fx.hip.createStream();
    Stream &b = fx.hip.createStream();
    std::vector<Tick> applied;
    fx.hip.streamSetCuMask(a, CuMask::firstN(10),
                           [&] { applied.push_back(fx.eq.now()); });
    fx.hip.streamSetCuMask(b, CuMask::firstN(20),
                           [&] { applied.push_back(fx.eq.now()); });
    fx.eq.run();
    ASSERT_EQ(applied.size(), 2u);
    EXPECT_EQ(applied[1] - applied[0],
              fx.hip.params().ioctlLatencyNs);
}

TEST(HipRuntime, MaskAppliesToSubsequentKernels)
{
    Fixture fx;
    Stream &s = fx.hip.createStream();
    // Launch, then reconfigure, then launch again; masks observed via
    // the trace hook.
    std::vector<unsigned> widths;
    fx.device.setTraceFn([&](const KernelTraceEvent &ev) {
        widths.push_back(ev.mask.count());
    });
    s.launchWithSignal(fx.kernel(), nullptr);
    fx.eq.run();
    fx.hip.streamSetCuMask(s, CuMask::firstN(15));
    fx.eq.run();
    s.launchWithSignal(fx.kernel(), nullptr);
    fx.eq.run();
    ASSERT_EQ(widths.size(), 2u);
    EXPECT_EQ(widths[0], 60u);
    EXPECT_EQ(widths[1], 15u);
}

TEST(HipRuntime, DeferCallbackUsesHandlerLatency)
{
    Fixture fx;
    Tick fired = 0;
    fx.hip.deferCallback([&] { fired = fx.eq.now(); });
    fx.eq.run();
    EXPECT_EQ(fired, fx.hip.params().callbackLatencyNs);
}

TEST(HipRuntime, SpaceLeftTracksQueueOccupancy)
{
    Fixture fx;
    Stream &s = fx.hip.createStream();
    const std::size_t initial = s.spaceLeft();
    s.launchWithSignal(fx.kernel(), nullptr);
    EXPECT_LT(s.spaceLeft(), initial);
    fx.eq.run();
    EXPECT_EQ(s.spaceLeft(), initial);
}

TEST(HipRuntime, DestroyStreamNullsTheSlotAndKeepsIdsStable)
{
    Fixture fx;
    Stream &a = fx.hip.createStream();
    Stream &b = fx.hip.createStream();
    const StreamId aid = a.id();
    EXPECT_EQ(fx.hip.streamOrNull(aid), &a);
    fx.hip.destroyStream(aid);
    // The slot is nulled, not erased: stale ids resolve to nullptr
    // and later streams never reuse them.
    EXPECT_EQ(fx.hip.streamOrNull(aid), nullptr);
    EXPECT_EQ(fx.hip.streamOrNull(b.id()), &b);
    Stream &c = fx.hip.createStream();
    EXPECT_NE(c.id(), aid);
}

TEST(HipRuntime, MaskTrackingFollowsInstallsAndInvalidation)
{
    Fixture fx;
    Stream &s = fx.hip.createStream();
    EXPECT_EQ(s.expectedCus(), 0u);
    EXPECT_FALSE(s.installedMaskKnown());

    s.noteReconfigRequested(15);
    EXPECT_EQ(s.expectedCus(), 15u);
    const std::uint64_t gen = s.maskGeneration();
    s.noteMaskInstalled(CuMask::firstN(15), gen);
    ASSERT_TRUE(s.installedMaskKnown());
    EXPECT_EQ(s.installedMask().count(), 15u);

    // External mask changes forget everything and bump the
    // generation so stale in-flight installs are ignored.
    fx.hip.streamSetCuMask(s, CuMask::firstN(10));
    fx.eq.run();
    EXPECT_EQ(s.expectedCus(), 0u);
    EXPECT_FALSE(s.installedMaskKnown());
    EXPECT_GT(s.maskGeneration(), gen);
    s.noteMaskInstalled(CuMask::firstN(15), gen); // stale: ignored
    EXPECT_FALSE(s.installedMaskKnown());
}

TEST(HipRuntimeDeath, InvalidUses)
{
    Fixture fx;
    Stream &s = fx.hip.createStream();
    EXPECT_EXIT(s.launchWithSignal(nullptr, nullptr),
                ::testing::ExitedWithCode(1), "null kernel");
    EXPECT_EXIT(fx.hip.streamSetCuMask(s, CuMask()),
                ::testing::ExitedWithCode(1), "empty");
    EXPECT_DEATH(fx.hip.stream(99), "unknown stream");
    EXPECT_DEATH(fx.hip.destroyStream(99), "unknown stream");
    const StreamId sid = s.id();
    fx.hip.destroyStream(sid);
    EXPECT_DEATH(fx.hip.stream(sid), "destroyed stream");
    EXPECT_DEATH(fx.hip.destroyStream(sid), "double destroy");
}

} // namespace
} // namespace krisp
