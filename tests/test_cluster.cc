/**
 * @file
 * Tests for the multi-GPU cluster: routing policies, shard bring-up,
 * fault-driven failover, and seed-replay determinism (the metrics
 * JSON and routing-decision hash must be byte-identical no matter
 * how many harness threads execute the sweep).
 */

#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster_server.hh"
#include "harness/worker_pool.hh"

namespace krisp
{
namespace
{

// ---- ClusterRouter ------------------------------------------------

TEST(ClusterRouter, RoundRobinCycles)
{
    ClusterRouter router(RoutingPolicy::RoundRobin, 3);
    EXPECT_EQ(router.route("m", 1), 0);
    EXPECT_EQ(router.route("m", 2), 1);
    EXPECT_EQ(router.route("m", 3), 2);
    EXPECT_EQ(router.route("m", 4), 0);
}

TEST(ClusterRouter, RoundRobinSkipsUnhealthy)
{
    ClusterRouter router(RoutingPolicy::RoundRobin, 3);
    router.setHealthy(1, false);
    EXPECT_EQ(router.route("m", 1), 0);
    EXPECT_EQ(router.route("m", 2), 2);
    EXPECT_EQ(router.route("m", 3), 0);
    router.setHealthy(1, true);
    EXPECT_EQ(router.route("m", 4), 1);
}

TEST(ClusterRouter, NoHealthyShardRoutesNowhere)
{
    ClusterRouter router(RoutingPolicy::LeastOutstanding, 2);
    router.setHealthy(0, false);
    router.setHealthy(1, false);
    EXPECT_EQ(router.route("m", 1), -1);
    // Unroutable decisions still advance the replay oracle.
    EXPECT_EQ(router.decisions(), 1u);
}

TEST(ClusterRouter, LeastOutstandingPicksMinLoad)
{
    ClusterRouter router(RoutingPolicy::LeastOutstanding, 3);
    router.addOutstanding(0, 5);
    router.addOutstanding(1, 2);
    router.addOutstanding(2, 2);
    // Tie between 1 and 2 breaks to the lowest index.
    EXPECT_EQ(router.route("m", 1), 1);
    router.addOutstanding(1, 3);
    EXPECT_EQ(router.route("m", 2), 2);
}

TEST(ClusterRouter, AffinityPrefersHomeThenFallsBack)
{
    ClusterRouter router(RoutingPolicy::ModelAffinity, 3);
    router.addHomeShard("a", 0);
    router.addHomeShard("b", 1);
    router.addHomeShard("b", 2);
    // Home shard wins even when another shard is idler.
    router.addOutstanding(0, 10);
    EXPECT_EQ(router.route("a", 1), 0);
    // Among b's homes, least outstanding wins.
    router.addOutstanding(1, 4);
    EXPECT_EQ(router.route("b", 2), 2);
    // With every home drained, any healthy shard serves the model.
    router.setHealthy(1, false);
    router.setHealthy(2, false);
    EXPECT_EQ(router.route("b", 3), 0);
}

TEST(ClusterRouter, DecisionHashTracksChoices)
{
    ClusterRouter a(RoutingPolicy::RoundRobin, 2);
    ClusterRouter b(RoutingPolicy::RoundRobin, 2);
    for (std::uint64_t id = 1; id <= 16; ++id) {
        a.route("m", id);
        b.route("m", id);
    }
    EXPECT_EQ(a.decisionHash(), b.decisionHash());
    // A diverging decision diverges the hash.
    b.setHealthy(0, false);
    a.route("m", 17);
    b.route("m", 17);
    EXPECT_NE(a.decisionHash(), b.decisionHash());
}

// ---- FaultPlan shard derivation -----------------------------------

TEST(FaultPlan, ForShardDerivesIndependentSeeds)
{
    const FaultPlan base = FaultPlan::uniform(0.1, 42);
    const FaultPlan s0 = base.forShard(0);
    const FaultPlan s1 = base.forShard(1);
    EXPECT_NE(s0.seed, s1.seed);
    EXPECT_NE(s0.seed, base.seed);
    // Pure function of (plan seed, shard index).
    EXPECT_EQ(s0.seed, base.forShard(0).seed);
    // The scenario itself is untouched.
    EXPECT_DOUBLE_EQ(s0.kernelHangProb, base.kernelHangProb);
}

// ---- GpuShard -----------------------------------------------------

TEST(GpuShard, BringsUpKrispStack)
{
    EventQueue eq;
    GpuShardConfig cfg;
    cfg.index = 3;
    cfg.models = {"resnet152"};
    cfg.policy = PartitionPolicy::KrispIsolated;
    GpuShard shard(eq, cfg);
    EXPECT_EQ(shard.device().name(), "shard3");
    EXPECT_NE(shard.krisp(), nullptr);
    EXPECT_TRUE(shard.isResident("resnet152"));
    EXPECT_FALSE(shard.isResident("vgg19"));
    EXPECT_EQ(shard.fault(), nullptr); // no faults configured
}

TEST(GpuShard, StaticPolicyHasNoKrispRuntime)
{
    EventQueue eq;
    GpuShardConfig cfg;
    cfg.models = {"resnet152"};
    cfg.policy = PartitionPolicy::StaticEqual;
    GpuShard shard(eq, cfg);
    EXPECT_EQ(shard.krisp(), nullptr);
    EXPECT_EQ(shard.reconfigFallbacks(), 0u);
}

// ---- ClusterServer ------------------------------------------------

ClusterConfig
smallCluster(RoutingPolicy routing, unsigned shards)
{
    ClusterConfig cfg;
    cfg.numShards = shards;
    cfg.routing = routing;
    cfg.models = {"resnet152", "vgg19"};
    cfg.workersPerShard = 2;
    cfg.arrivalRatePerSec = 150.0 * shards;
    cfg.warmupNs = ticksFromMs(50);
    cfg.measureNs = ticksFromMs(300);
    return cfg;
}

TEST(ClusterServer, ServesAcrossShards)
{
    const ClusterResult r =
        ClusterServer(smallCluster(RoutingPolicy::RoundRobin, 2))
            .run();
    EXPECT_GT(r.served, 0u);
    EXPECT_EQ(r.servedPerShard.size(), 2u);
    // Round-robin over symmetric shards: both serve.
    EXPECT_GT(r.servedPerShard[0], 0u);
    EXPECT_GT(r.servedPerShard[1], 0u);
    EXPECT_EQ(r.servedPerShard[0] + r.servedPerShard[1], r.served);
    EXPECT_EQ(r.failovers, 0u);
}

TEST(ClusterServer, SeedReplayIsExact)
{
    const ClusterResult a =
        ClusterServer(smallCluster(RoutingPolicy::LeastOutstanding, 2))
            .run();
    const ClusterResult b =
        ClusterServer(smallCluster(RoutingPolicy::LeastOutstanding, 2))
            .run();
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.routingDecisions, b.routingDecisions);
    EXPECT_EQ(a.routingHash, b.routingHash);
    EXPECT_DOUBLE_EQ(a.p99Ms, b.p99Ms);
}

TEST(ClusterServer, DifferentSeedsDiverge)
{
    ClusterConfig cfg =
        smallCluster(RoutingPolicy::LeastOutstanding, 2);
    const ClusterResult a = ClusterServer(cfg).run();
    cfg.seed = 2;
    const ClusterResult b = ClusterServer(cfg).run();
    EXPECT_NE(a.routingHash, b.routingHash);
}

TEST(ClusterServer, MetricsJsonByteIdenticalAcrossJobs)
{
    // The same four-run sweep executed sequentially and on eight
    // harness threads must merge to byte-identical metrics JSON and
    // routing hashes (islands + spec-order merge).
    auto sweep = [](unsigned jobs) {
        std::vector<std::string> json(4);
        std::vector<std::uint64_t> hashes(4);
        harness::WorkerPool pool(jobs);
        pool.forEachIndex(json.size(), [&](std::size_t i) {
            ObsContext obs;
            ClusterConfig cfg = smallCluster(
                i % 2 == 0 ? RoutingPolicy::RoundRobin
                           : RoutingPolicy::ModelAffinity,
                i < 2 ? 1 : 2);
            cfg.seed = 7 + i;
            cfg.obs = &obs;
            const ClusterResult r = ClusterServer(cfg).run();
            json[i] = obs.metrics.toJson();
            hashes[i] = r.routingHash;
        });
        std::string all;
        for (std::size_t i = 0; i < json.size(); ++i)
            all += json[i] + "\n" + std::to_string(hashes[i]) + "\n";
        return all;
    };
    const std::string sequential = sweep(1);
    const std::string threaded = sweep(8);
    EXPECT_EQ(sequential, threaded);
}

TEST(ClusterServer, PublishesClusterMetrics)
{
    ObsContext obs;
    ClusterConfig cfg = smallCluster(RoutingPolicy::RoundRobin, 2);
    cfg.obs = &obs;
    const ClusterResult r = ClusterServer(cfg).run();
    const std::string json = obs.metrics.toJson();
    // Per-shard snapshots merge in under a stable prefix...
    EXPECT_NE(json.find("cluster.shard0.gpu.kernels_completed"),
              std::string::npos);
    EXPECT_NE(json.find("cluster.shard1.krisp.launches"),
              std::string::npos);
    // ...next to the cluster rollups.
    EXPECT_NE(json.find("cluster.routing_hash"), std::string::npos);
    EXPECT_DOUBLE_EQ(
        obs.metrics.gauge("cluster.requests_served").value(),
        static_cast<double>(r.served));
}

TEST(ClusterServer, HangStormDrainsAndRecovers)
{
    ClusterConfig cfg = smallCluster(RoutingPolicy::RoundRobin, 2);
    // Hangs everywhere + a tight batch watchdog: shards accumulate
    // failed batches and the failover monitor must drain (and later
    // re-admit) them rather than letting requests rot. The rate is
    // per *kernel* and a batch runs dozens, so even this small
    // probability fails a sizable share of batches.
    cfg.faults.kernelHangProb = 0.003;
    cfg.faults.watchdogTimeoutNs = ticksFromMs(20);
    cfg.batchWatchdogNs = ticksFromMs(30);
    cfg.failoverHangThreshold = 2;
    cfg.drainNs = ticksFromMs(40);
    cfg.measureNs = ticksFromMs(500);
    const ClusterResult r = ClusterServer(cfg).run();
    EXPECT_GT(r.failedBatches, 0u);
    EXPECT_GT(r.failovers, 0u);
    EXPECT_GT(r.readmits, 0u);
    // The cluster keeps serving through the storms.
    EXPECT_GT(r.served, 0u);
}

TEST(ClusterServer, FailoverReroutesBacklog)
{
    ObsContext obs;
    ClusterConfig cfg = smallCluster(RoutingPolicy::RoundRobin, 2);
    cfg.obs = &obs;
    cfg.faults.kernelHangProb = 0.08;
    cfg.faults.watchdogTimeoutNs = ticksFromMs(20);
    cfg.batchWatchdogNs = ticksFromMs(25);
    cfg.failoverHangThreshold = 1;
    cfg.drainNs = ticksFromMs(60);
    cfg.measureNs = ticksFromMs(500);
    const ClusterResult r = ClusterServer(cfg).run();
    EXPECT_GT(r.failovers, 0u);
    // Drain events land in the trace for post-mortems.
    bool saw_drain = false;
    for (const TraceRecord &rec : obs.trace.records())
        if (rec.kind == TraceEventKind::RecoveryAction &&
            rec.name == "shard_drain")
            saw_drain = true;
    EXPECT_TRUE(saw_drain);
}

TEST(ClusterServer, FaultsAreShardLocal)
{
    // Identical configs except shard count: shard 0's fault stream
    // derives from forShard(0) either way, so adding a shard must
    // not change what shard 0 draws. We can't observe the stream
    // directly, but the single-shard run must replay exactly.
    ClusterConfig cfg = smallCluster(RoutingPolicy::RoundRobin, 1);
    cfg.faults.kernelSlowProb = 0.2;
    cfg.faults.watchdogTimeoutNs = 0;
    const ClusterResult a = ClusterServer(cfg).run();
    const ClusterResult b = ClusterServer(cfg).run();
    EXPECT_EQ(a.served, b.served);
    EXPECT_DOUBLE_EQ(a.p99Ms, b.p99Ms);
}

} // namespace
} // namespace krisp
