/**
 * @file
 * Tests for the parallel experiment harness: worker pool semantics
 * (ordering, exception propagation, job-count resolution) and the
 * determinism guarantee — merged results and per-run artifacts are
 * identical for any thread count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "harness/parallel_runner.hh"
#include "harness/worker_pool.hh"
#include "server/experiment.hh"

namespace krisp
{
namespace
{

TEST(WorkerPool, RunsEveryIndexExactlyOnce)
{
    for (const unsigned jobs : {1u, 2u, 3u, 8u}) {
        harness::WorkerPool pool(jobs);
        std::vector<std::atomic<int>> hits(17);
        pool.forEachIndex(hits.size(), [&](std::size_t i) {
            hits[i].fetch_add(1);
        });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(WorkerPool, ResultsLandInIndexOrderSlots)
{
    harness::WorkerPool pool(4);
    std::vector<int> out(50, -1);
    pool.forEachIndex(out.size(), [&](std::size_t i) {
        out[i] = static_cast<int>(i) * 3;
    });
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) * 3);
}

TEST(WorkerPool, ZeroTasksIsANoOp)
{
    harness::WorkerPool pool(4);
    bool called = false;
    pool.forEachIndex(0, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(WorkerPool, MoreJobsThanTasks)
{
    harness::WorkerPool pool(16);
    std::vector<std::atomic<int>> hits(3);
    pool.forEachIndex(hits.size(), [&](std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, SingleJobRunsInline)
{
    harness::WorkerPool pool(1);
    const auto caller = std::this_thread::get_id();
    pool.forEachIndex(4, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}

TEST(WorkerPool, LowestIndexExceptionWinsAndAllTasksRun)
{
    for (const unsigned jobs : {1u, 4u}) {
        harness::WorkerPool pool(jobs);
        std::vector<std::atomic<int>> hits(10);
        try {
            pool.forEachIndex(hits.size(), [&](std::size_t i) {
                hits[i].fetch_add(1);
                if (i == 7 || i == 3)
                    throw std::runtime_error("task " +
                                             std::to_string(i));
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "task 3");
        }
        // A failure must not cancel the remaining tasks.
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(WorkerPool, JobsFromCommandLine)
{
    const char *argv1[] = {"bench", "--jobs", "5"};
    EXPECT_EQ(harness::jobsFromCommandLine(
                  3, const_cast<char **>(argv1)),
              5u);
    const char *argv2[] = {"bench", "--jobs=12"};
    EXPECT_EQ(harness::jobsFromCommandLine(
                  2, const_cast<char **>(argv2)),
              12u);
}

TEST(WorkerPool, JobsFromEnvironment)
{
    ASSERT_EQ(setenv("KRISP_JOBS", "3", 1), 0);
    EXPECT_EQ(harness::defaultJobs(), 3u);
    // The command line wins over the environment.
    const char *argv[] = {"bench", "--jobs=2"};
    EXPECT_EQ(harness::jobsFromCommandLine(
                  2, const_cast<char **>(argv)),
              2u);
    // Without a --jobs flag the environment decides.
    const char *bare[] = {"bench"};
    EXPECT_EQ(harness::jobsFromCommandLine(
                  1, const_cast<char **>(bare)),
              3u);
    ASSERT_EQ(unsetenv("KRISP_JOBS"), 0);
    EXPECT_GE(harness::defaultJobs(), 1u);
}

// ---- determinism: thread-count invariance -----------------------

ServerConfig
tinyConfig(const std::string &model, PartitionPolicy policy,
           unsigned workers)
{
    ServerConfig cfg;
    cfg.workerModels.assign(workers, model);
    cfg.batch = 8;
    cfg.policy = policy;
    cfg.warmupRequests = 1;
    cfg.measuredRequests = 2;
    return cfg;
}

std::vector<harness::RunSpec>
tinySweep()
{
    std::vector<harness::RunSpec> specs;
    for (const char *model : {"squeezenet", "alexnet"}) {
        for (const PartitionPolicy policy :
             {PartitionPolicy::MpsDefault,
              PartitionPolicy::KrispIsolated}) {
            for (const unsigned w : {1u, 2u}) {
                specs.push_back(harness::RunSpec{
                    std::string(model) + "/" +
                        std::to_string(static_cast<int>(policy)) +
                        "/x" + std::to_string(w),
                    tinyConfig(model, policy, w),
                    /*collectMetrics=*/true, /*collectTrace=*/true,
                    {}});
            }
        }
    }
    return specs;
}

TEST(ParallelRunner, ThreadCountInvariance)
{
    // The reference: the whole sweep run strictly sequentially.
    std::vector<harness::RunOutcome> ref =
        harness::runAll(tinySweep(), 1);

    for (const unsigned jobs : {2u, 8u}) {
        std::vector<harness::RunOutcome> got =
            harness::runAll(tinySweep(), jobs);
        ASSERT_EQ(got.size(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i) {
            SCOPED_TRACE("jobs=" + std::to_string(jobs) + " spec " +
                         ref[i].tag);
            EXPECT_EQ(got[i].tag, ref[i].tag);
            // Simulated-time results are exactly reproducible, so
            // compare bitwise, not approximately.
            EXPECT_EQ(got[i].result.totalRps, ref[i].result.totalRps);
            EXPECT_EQ(got[i].result.maxP95Ms, ref[i].result.maxP95Ms);
            EXPECT_EQ(got[i].result.energyPerInferenceJ,
                      ref[i].result.energyPerInferenceJ);
            EXPECT_EQ(got[i].result.completed, ref[i].result.completed);
            ASSERT_TRUE(got[i].obs != nullptr);
            ASSERT_TRUE(ref[i].obs != nullptr);
            // Byte-identical artifacts: metrics snapshot and trace.
            EXPECT_EQ(got[i].obs->metrics.toJson(),
                      ref[i].obs->metrics.toJson());
            EXPECT_EQ(got[i].obs->trace.toChromeJson(),
                      ref[i].obs->trace.toChromeJson());
        }
    }
}

TEST(ParallelRunner, TraceFilesAreWrittenPerRun)
{
    const std::string dir = ::testing::TempDir();
    std::vector<harness::RunSpec> specs;
    specs.push_back(harness::RunSpec{
        "a", tinyConfig("squeezenet", PartitionPolicy::MpsDefault, 1),
        false, false, dir + "harness_a.trace.json"});
    specs.push_back(harness::RunSpec{
        "b", tinyConfig("squeezenet", PartitionPolicy::MpsDefault, 1),
        false, false, dir + "harness_b.trace.json"});
    std::vector<harness::RunOutcome> out =
        harness::runAll(std::move(specs), 2);
    ASSERT_EQ(out.size(), 2u);
    for (const auto &o : out) {
        ASSERT_TRUE(o.obs != nullptr);
        EXPECT_GT(o.obs->trace.size(), 0u);
    }
    // Identical configs -> identical serialised traces.
    EXPECT_EQ(out[0].obs->trace.toChromeJson(),
              out[1].obs->trace.toChromeJson());
}

TEST(ParallelRunner, MetricsOnlySpecDisablesTrace)
{
    std::vector<harness::RunSpec> specs;
    specs.push_back(harness::RunSpec{
        "m", tinyConfig("squeezenet", PartitionPolicy::MpsDefault, 1),
        /*collectMetrics=*/true, /*collectTrace=*/false, {}});
    std::vector<harness::RunOutcome> out =
        harness::runAll(std::move(specs), 1);
    ASSERT_EQ(out.size(), 1u);
    ASSERT_TRUE(out[0].obs != nullptr);
    EXPECT_EQ(out[0].obs->trace.size(), 0u);
    EXPECT_GT(out[0].obs->metrics.gauge("sim.events_fired").value(),
              0.0);
}

TEST(ParallelRunner, PrefetchMatchesSequentialEvaluate)
{
    // evaluate() after prefetch() replays cached parallel results;
    // they must equal a never-prefetched sequential context bitwise.
    ServerConfig base;
    base.batch = 8;
    base.warmupRequests = 1;
    base.measuredRequests = 2;

    std::vector<EvalSpec> specs;
    for (const unsigned w : {1u, 2u})
        specs.push_back(
            {"squeezenet", PartitionPolicy::KrispIsolated, w, {}});

    ExperimentContext seq(base);
    ExperimentContext par(base);
    par.prefetch(specs, 4);

    for (const EvalSpec &spec : specs) {
        const EvalPoint a =
            seq.evaluate(spec.model, spec.policy, spec.workers);
        const EvalPoint b =
            par.evaluate(spec.model, spec.policy, spec.workers);
        EXPECT_EQ(a.totalRps, b.totalRps);
        EXPECT_EQ(a.normalizedRps, b.normalizedRps);
        EXPECT_EQ(a.p95Ms, b.p95Ms);
        EXPECT_EQ(a.sloMs, b.sloMs);
        EXPECT_EQ(a.energyPerInferenceJ, b.energyPerInferenceJ);
    }
}

} // namespace
} // namespace krisp
