/**
 * @file
 * Unit tests for the Required-CUs table and kernel sizers.
 */

#include <gtest/gtest.h>

#include "core/perf_database.hh"
#include "kern/kernel_builder.hh"

namespace krisp
{
namespace
{

const ArchParams arch = ArchParams::mi50();

TEST(PerfDatabase, SetAndGet)
{
    PerfDatabase db;
    EXPECT_TRUE(db.empty());
    db.setMinCus("k1", 12);
    EXPECT_EQ(db.size(), 1u);
    ASSERT_TRUE(db.minCus("k1").has_value());
    EXPECT_EQ(*db.minCus("k1"), 12u);
    EXPECT_FALSE(db.minCus("missing").has_value());
}

TEST(PerfDatabase, OverwriteUpdates)
{
    PerfDatabase db;
    db.setMinCus("k", 10);
    db.setMinCus("k", 20);
    EXPECT_EQ(db.size(), 1u);
    EXPECT_EQ(*db.minCus("k"), 20u);
}

TEST(PerfDatabase, DescriptorLookupUsesProfileKey)
{
    PerfDatabase db;
    const auto d = makeGemm(arch, 256, 768, 768);
    db.setMinCus(d.profileKey(), 12);
    EXPECT_EQ(*db.minCus(d), 12u);
}

TEST(PerfDatabase, CsvRoundTrip)
{
    PerfDatabase db;
    db.setMinCus("alpha/g10x256", 7);
    db.setMinCus("beta/g99x64", 60);
    const std::string csv = db.toCsv();

    PerfDatabase other;
    EXPECT_EQ(other.loadCsv(csv), 2u);
    EXPECT_EQ(*other.minCus("alpha/g10x256"), 7u);
    EXPECT_EQ(*other.minCus("beta/g99x64"), 60u);
}

TEST(PerfDatabase, LoadCsvSkipsBlankLines)
{
    PerfDatabase db;
    EXPECT_EQ(db.loadCsv("a,1\n\nb,2\n"), 2u);
    EXPECT_EQ(db.size(), 2u);
}

TEST(PerfDatabase, KeysWithCommasUseLastComma)
{
    PerfDatabase db;
    db.loadCsv("weird,key,5\n");
    EXPECT_EQ(*db.minCus("weird,key"), 5u);
}

TEST(PerfDatabase, Clear)
{
    PerfDatabase db;
    db.setMinCus("x", 1);
    db.clear();
    EXPECT_TRUE(db.empty());
}

TEST(ProfiledSizer, LooksUpAndFallsBack)
{
    PerfDatabase db;
    const auto known = makeGemm(arch, 256, 768, 768);
    const auto unknown = makeGemm(arch, 512, 768, 768);
    db.setMinCus(known.profileKey(), 9);

    ProfiledSizer sizer(db, 60);
    EXPECT_EQ(sizer.rightSize(known), 9u);
    EXPECT_EQ(sizer.misses, 0u);
    EXPECT_EQ(sizer.rightSize(unknown), 60u);
    EXPECT_EQ(sizer.misses, 1u);
}

TEST(FixedSizer, AlwaysSameAnswer)
{
    FixedSizer sizer(42);
    const auto d = makeGemm(arch, 64, 64, 64);
    EXPECT_EQ(sizer.rightSize(d), 42u);
}

TEST(PerfDatabaseDeath, ZeroMinCusRejected)
{
    PerfDatabase db;
    EXPECT_EXIT(db.setMinCus("k", 0), ::testing::ExitedWithCode(1),
                "zero");
}

TEST(PerfDatabaseDeath, MalformedCsvRejected)
{
    PerfDatabase db;
    EXPECT_EXIT(db.loadCsv("no-comma-here\n"),
                ::testing::ExitedWithCode(1), "malformed");
}

} // namespace
} // namespace krisp
