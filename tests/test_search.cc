/**
 * @file
 * Placement-search test suite (search/): shard-order invariance of
 * the canonical ClusterConfig fingerprint, candidate
 * canonicalisation, the two dedup layers of the eval cache
 * (cross-chain promise sharing + warm JSON snapshots), cold-vs-warm
 * search equivalence, --jobs byte-identity of the annealer, the
 * engine worker clamp, and the krisp-report placement section.
 *
 * Ground truth is injected (setSimFn) wherever the property under
 * test is about the search machinery, so the suite stays fast and
 * the expected values are exact.
 */

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster_server.hh"
#include "cluster/parallel_engine.hh"
#include "obs/json_parse.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "search/annealer.hh"

namespace krisp
{
namespace
{

/** Two-model, three-shard problem used across the suite. */
PlacementProblem
smallProblem()
{
    PlacementProblem problem;
    problem.models = {"resnet152", "squeezenet"};
    problem.weights = {1, 2};
    problem.numShards = 3;
    problem.base.arrivalRatePerSec = 200.0;
    problem.base.warmupNs = ticksFromMs(20);
    problem.base.measureNs = ticksFromMs(100);
    problem.base.maxSimNs = ticksFromSec(10.0);
    problem.base.seed = 11;
    return problem;
}

/**
 * Deterministic stand-in for ClusterServer: a pure function of the
 * canonical fingerprint, so permutation-equal configs get equal
 * outcomes and distinct configs (almost surely) do not.
 */
SimOutcome
fakeSim(const ClusterConfig &config)
{
    const std::uint64_t fp = config.fingerprint();
    SimOutcome out;
    out.p50Ms = 1.0 + static_cast<double>(fp % 97) * 0.1;
    out.p95Ms = out.p50Ms * 2.0;
    out.p99Ms = out.p50Ms * 3.0;
    out.energyPerRequestJ =
        0.2 + static_cast<double>(fp % 13) * 0.01;
    return out;
}

// ---- fingerprint ---------------------------------------------------

TEST(Fingerprint, ShardOrderInvariant)
{
    PlacementProblem problem = smallProblem();

    // resnet on shards {0,2}, squeezenet on {1}; caps 16/0/32.
    ClusterConfig a = problem.base;
    a.numShards = 3;
    a.models = {"resnet152", "squeezenet"};
    a.modelHomes = {{0, 2}, {1}};
    a.shardGrantCapCus = {16, 0, 32};

    // Relabel shards by the cycle old->new: 0->1, 1->2, 2->0. The
    // same physical cluster, different indices.
    ClusterConfig b = a;
    b.modelHomes = {{1, 0}, {2}};
    b.shardGrantCapCus = {32, 16, 0};

    EXPECT_EQ(a.fingerprint(), b.fingerprint());

    // Home-list order within one model is immaterial too.
    ClusterConfig c = a;
    c.modelHomes = {{2, 0}, {1}};
    EXPECT_EQ(a.fingerprint(), c.fingerprint());
}

TEST(Fingerprint, SensitiveToEveryKnob)
{
    PlacementProblem problem = smallProblem();
    ClusterConfig base = problem.base;
    base.numShards = 3;
    base.models = {"resnet152", "squeezenet"};
    base.modelHomes = {{0, 2}, {1}};
    base.shardGrantCapCus = {16, 0, 32};
    const std::uint64_t fp = base.fingerprint();

    ClusterConfig moved = base;
    moved.modelHomes = {{0, 1}, {1}};
    EXPECT_NE(fp, moved.fingerprint());

    ClusterConfig capped = base;
    capped.shardGrantCapCus = {16, 0, 40};
    EXPECT_NE(fp, capped.fingerprint());

    ClusterConfig routed = base;
    ASSERT_NE(routed.routing, RoutingPolicy::RoundRobin);
    routed.routing = RoutingPolicy::RoundRobin;
    EXPECT_NE(fp, routed.fingerprint());

    ClusterConfig reconf = base;
    reconf.reconfig = ReconfigPolicy::Group;
    EXPECT_NE(fp, reconf.fingerprint());

    ClusterConfig rated = base;
    rated.arrivalRatePerSec += 1.0;
    EXPECT_NE(fp, rated.fingerprint());
}

TEST(Fingerprint, EngineSelectionIsExcluded)
{
    // The engine executes the run; it does not define the workload.
    // A parallel-engine replay must hit the cache entries written by
    // a sequential run.
    PlacementProblem problem = smallProblem();
    ClusterConfig a = problem.base;
    ClusterConfig b = a;
    b.engine.engine = ClusterEngine::Parallel;
    b.engine.workers = 7;
    b.engine.windowNs = 123;
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

// ---- candidate canonicalisation ------------------------------------

TEST(Candidate, PermutedCandidatesCanonicaliseIdentically)
{
    PlacementProblem problem = smallProblem();

    PlacementCandidate a;
    a.homes = {0b101, 0b010}; // resnet {0,2}, squeeze {1}
    a.grantCapCus = {16, 0, 32};
    a.routing = RoutingPolicy::ModelAffinity;
    a.reconfig = ReconfigPolicy::Elide;

    // Same cluster under the relabeling 0->1, 1->2, 2->0.
    PlacementCandidate b = a;
    b.homes = {0b011, 0b100}; // resnet {1,0}, squeeze {2}
    b.grantCapCus = {32, 16, 0};

    const PlacementCandidate ca = a.canonical(problem);
    const PlacementCandidate cb = b.canonical(problem);
    EXPECT_EQ(ca.homes, cb.homes);
    EXPECT_EQ(ca.grantCapCus, cb.grantCapCus);
    EXPECT_EQ(a.fingerprint(problem), b.fingerprint(problem));

    // Identical canonical operands => bit-equal surrogate scores.
    SurrogateModel surrogate(problem);
    EXPECT_EQ(surrogate.score(a), surrogate.score(b));
}

// ---- eval cache ----------------------------------------------------

TEST(EvalCache, PermutationsShareOneComputation)
{
    PlacementProblem problem = smallProblem();

    PlacementCandidate a;
    a.homes = {0b101, 0b010};
    a.grantCapCus = {16, 0, 32};
    PlacementCandidate b = a;
    b.homes = {0b011, 0b100};
    b.grantCapCus = {32, 16, 0};

    EvalCache cache;
    std::atomic<int> computed{0};
    const auto compute = [&] {
        ++computed;
        return fakeSim(a.toClusterConfig(problem));
    };
    const SimOutcome oa =
        cache.getOrCompute(a.fingerprint(problem), compute);
    const SimOutcome ob =
        cache.getOrCompute(b.fingerprint(problem), compute);

    EXPECT_EQ(computed.load(), 1);
    EXPECT_EQ(oa.p99Ms, ob.p99Ms);
    EXPECT_EQ(oa.energyPerRequestJ, ob.energyPerRequestJ);
    const EvalCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.requests, 2u);
    EXPECT_EQ(stats.executed, 1u);
    EXPECT_EQ(stats.crossChainHits, 1u);
    EXPECT_EQ(stats.warmHits, 0u);
}

TEST(EvalCache, JsonRoundTripPreservesOutcomes)
{
    const std::string path =
        testing::TempDir() + "krisp_eval_cache_roundtrip.json";
    std::remove(path.c_str());

    EvalCache cold;
    SimOutcome out;
    out.p50Ms = 1.25;
    out.p95Ms = 7.5;
    out.p99Ms = 12.125;
    out.energyPerRequestJ = 0.4375;
    out.dropRate = 0.03125;
    out.availability = 0.96875;
    cold.getOrCompute(0xdeadbeefULL, [&] { return out; });
    cold.getOrCompute(0x42ULL, [&] { return SimOutcome{}; });
    cold.saveJson(path);

    EvalCache warm;
    ASSERT_TRUE(warm.loadJson(path));
    EXPECT_EQ(warm.size(), 2u);
    bool computed = false;
    const SimOutcome back =
        warm.getOrCompute(0xdeadbeefULL, [&] {
            computed = true;
            return SimOutcome{};
        });
    EXPECT_FALSE(computed);
    EXPECT_EQ(back.p50Ms, out.p50Ms);
    EXPECT_EQ(back.p95Ms, out.p95Ms);
    EXPECT_EQ(back.p99Ms, out.p99Ms);
    EXPECT_EQ(back.energyPerRequestJ, out.energyPerRequestJ);
    EXPECT_EQ(back.dropRate, out.dropRate);
    EXPECT_EQ(back.availability, out.availability);
    EXPECT_EQ(warm.stats().warmHits, 1u);
    std::remove(path.c_str());
}

// ---- annealer ------------------------------------------------------

SearchConfig
smallSearch(const std::string &cache_path = "")
{
    SearchConfig search;
    search.chains = 3;
    search.stepsPerChain = 10;
    search.seed = 5;
    search.cachePath = cache_path;
    return search;
}

TEST(Search, WarmRerunExecutesZeroSimsAndAgrees)
{
    PlacementProblem problem = smallProblem();
    const std::string path =
        testing::TempDir() + "krisp_search_warm.json";
    std::remove(path.c_str());

    PlacementSearch cold_search(problem, smallSearch(path));
    std::atomic<int> cold_sims{0};
    cold_search.setSimFn([&](const ClusterConfig &cfg) {
        ++cold_sims;
        return fakeSim(cfg);
    });
    const SearchResult cold = cold_search.run(2);
    EXPECT_GT(cold_sims.load(), 0);
    EXPECT_EQ(cold.cache.warmHits, 0u);
    EXPECT_EQ(static_cast<int>(cold.cache.executed),
              cold_sims.load());

    PlacementSearch warm_search(problem, smallSearch(path));
    std::atomic<int> warm_sims{0};
    warm_search.setSimFn([&](const ClusterConfig &cfg) {
        ++warm_sims;
        return fakeSim(cfg);
    });
    const SearchResult warm = warm_search.run(2);
    EXPECT_EQ(warm_sims.load(), 0);
    EXPECT_EQ(warm.cache.executed, 0u);
    EXPECT_GT(warm.cache.warmHits, 0u);
    EXPECT_EQ(warm.winnerFingerprint, cold.winnerFingerprint);
    EXPECT_EQ(warm.winnerCost, cold.winnerCost);
    EXPECT_EQ(warm.generated, cold.generated);
    EXPECT_EQ(warm.pruned, cold.pruned);
    std::remove(path.c_str());
}

TEST(Search, ResultIsJobsInvariant)
{
    PlacementProblem problem = smallProblem();

    SearchResult results[2];
    const unsigned jobs[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
        PlacementSearch search(problem, smallSearch());
        search.setSimFn(fakeSim);
        results[i] = search.run(jobs[i]);
    }
    EXPECT_EQ(results[0].winnerFingerprint,
              results[1].winnerFingerprint);
    EXPECT_EQ(results[0].winnerCost, results[1].winnerCost);
    EXPECT_EQ(results[0].generated, results[1].generated);
    EXPECT_EQ(results[0].pruned, results[1].pruned);
    EXPECT_EQ(results[0].surrogateEvals, results[1].surrogateEvals);
    EXPECT_EQ(results[0].cache.requests, results[1].cache.requests);
    EXPECT_EQ(results[0].cache.executed, results[1].cache.executed);
    EXPECT_EQ(results[0].cache.crossChainHits,
              results[1].cache.crossChainHits);
    ASSERT_EQ(results[0].chains.size(), results[1].chains.size());
    for (std::size_t c = 0; c < results[0].chains.size(); ++c) {
        EXPECT_EQ(results[0].chains[c].bestCost,
                  results[1].chains[c].bestCost);
        EXPECT_EQ(results[0].chains[c].accepted,
                  results[1].chains[c].accepted);
        EXPECT_EQ(results[0].chains[c].pruned,
                  results[1].chains[c].pruned);
        EXPECT_EQ(results[0].chains[c].bestTrace,
                  results[1].chains[c].bestTrace);
    }
}

TEST(Search, GroundTruthPermutationCostsAgreeThroughCache)
{
    // The ISSUE-level property, end to end with the *real*
    // simulator: permuted placements share a fingerprint, so the
    // cache serves both from one sim and their costs are equal by
    // construction.
    PlacementProblem problem = smallProblem();
    PlacementCandidate a;
    a.homes = {0b101, 0b010};
    a.grantCapCus = {0, 0, 0};
    PlacementCandidate b = a;
    b.homes = {0b011, 0b100};

    EvalCache cache;
    int sims = 0;
    const auto eval = [&](const PlacementCandidate &cand) {
        return cache.getOrCompute(cand.fingerprint(problem), [&] {
            ++sims;
            return PlacementSearch::simulate(
                cand.toClusterConfig(problem));
        });
    };
    const CostSpec cost;
    const double cost_a = cost.costOf(eval(a));
    const double cost_b = cost.costOf(eval(b));
    EXPECT_EQ(sims, 1);
    EXPECT_EQ(cost_a, cost_b);
    EXPECT_GT(cost_a, 0.0);
}

// ---- engine worker clamp -------------------------------------------

TEST(EngineWorkers, OversubscriptionClampsToHardware)
{
    EngineConfig config;
    config.engine = ClusterEngine::Parallel;
    config.workers = 4096;
    const auto fabric = makeClusterFabric(config, 2, 1000);
    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    EXPECT_LE(fabric->stats().workersUsed, hw);
    EXPECT_GE(fabric->stats().workersUsed, 1u);
}

// ---- report --------------------------------------------------------

TEST(Report, RendersPlacementSection)
{
    PlacementProblem problem = smallProblem();
    PlacementSearch search(problem, smallSearch());
    search.setSimFn(fakeSim);
    const SearchResult result = search.run(2);

    MetricsRegistry metrics;
    publishPlacementMetrics(metrics, problem, result, 123.0);

    json::Value snapshot;
    std::string error;
    ASSERT_TRUE(json::parse(metrics.toJson(), snapshot, error))
        << error;
    const std::string report =
        generateReport(snapshot, nullptr, {}, ReportOptions{});
    EXPECT_NE(report.find("== placement search =="),
              std::string::npos);
    EXPECT_NE(report.find("best static baseline"),
              std::string::npos);
    EXPECT_NE(report.find("cross-chain hits"), std::string::npos);
    EXPECT_NE(report.find("chain 0"), std::string::npos);

    // A snapshot without placement gauges renders the placeholder.
    json::Value empty;
    ASSERT_TRUE(json::parse("{}", empty, error)) << error;
    const std::string bare =
        generateReport(empty, nullptr, {}, ReportOptions{});
    EXPECT_NE(bare.find("not a search snapshot"),
              std::string::npos);
}

} // namespace
} // namespace krisp
