/**
 * @file
 * Unit tests for the common utilities: statistics accumulators,
 * deterministic RNG, text tables and tick conversions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

namespace krisp
{
namespace
{

TEST(Ticks, Conversions)
{
    EXPECT_EQ(ticksFromUs(1.0), 1000u);
    EXPECT_EQ(ticksFromMs(1.0), 1'000'000u);
    EXPECT_EQ(ticksFromSec(1.0), 1'000'000'000u);
    EXPECT_DOUBLE_EQ(ticksToMs(2'500'000), 2.5);
    EXPECT_DOUBLE_EQ(ticksToSec(500'000'000), 0.5);
    EXPECT_EQ(ticksFromNs(-5.0), 0u);
    EXPECT_EQ(ticksFromNs(1.6), 2u); // rounds
}

TEST(Accumulator, Empty)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, BasicMoments)
{
    Accumulator acc;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(x);
    EXPECT_EQ(acc.count(), 8u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
    EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Accumulator, SingleSampleVarianceIsZero)
{
    Accumulator acc;
    acc.add(42.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
    EXPECT_DOUBLE_EQ(acc.min(), 42.0);
    EXPECT_DOUBLE_EQ(acc.max(), 42.0);
}

TEST(Accumulator, Reset)
{
    Accumulator acc;
    acc.add(1.0);
    acc.reset();
    EXPECT_EQ(acc.count(), 0u);
}

TEST(Accumulator, NegativeValues)
{
    Accumulator acc;
    acc.add(-3.0);
    acc.add(3.0);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.min(), -3.0);
}

TEST(PercentileTracker, NearestRank)
{
    // The header promises nearest-rank: the smallest sample with at
    // least ceil(q*n) samples at or below it. Every result must be a
    // value that was actually observed — nothing interpolated.
    PercentileTracker t;
    for (int i = 1; i <= 100; ++i)
        t.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(t.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(t.percentile(1.0), 100.0);
    EXPECT_DOUBLE_EQ(t.percentile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(t.percentile(0.95), 95.0);
    EXPECT_DOUBLE_EQ(t.percentile(0.99), 99.0);
    EXPECT_NEAR(t.mean(), 50.5, 1e-9);
}

TEST(PercentileTracker, NearestRankExactRankHits)
{
    // ceil(q*n) landing exactly on an integer rank must pick that
    // sample, not the next one: with n=4, q=0.25 -> rank 1, q=0.5 ->
    // rank 2, q=0.75 -> rank 3.
    PercentileTracker t;
    for (double x : {10.0, 20.0, 30.0, 40.0})
        t.add(x);
    EXPECT_DOUBLE_EQ(t.percentile(0.25), 10.0);
    EXPECT_DOUBLE_EQ(t.percentile(0.5), 20.0);
    EXPECT_DOUBLE_EQ(t.percentile(0.75), 30.0);
    EXPECT_DOUBLE_EQ(t.percentile(0.76), 40.0);
    EXPECT_DOUBLE_EQ(t.percentile(1.0), 40.0);
}

TEST(PercentileTracker, NearestRankTwoSamples)
{
    PercentileTracker t;
    t.add(1.0);
    t.add(2.0);
    EXPECT_DOUBLE_EQ(t.percentile(0.0), 1.0);
    // ceil(0.5 * 2) = 1: the median of two samples is the lower one.
    EXPECT_DOUBLE_EQ(t.percentile(0.5), 1.0);
    EXPECT_DOUBLE_EQ(t.percentile(0.51), 2.0);
    EXPECT_DOUBLE_EQ(t.percentile(1.0), 2.0);
}

TEST(PercentileTracker, NearestRankAlwaysReturnsObservedSample)
{
    Rng rng(0xbeefULL);
    PercentileTracker t;
    std::set<double> seen;
    for (int i = 0; i < 37; ++i) {
        const double x = rng.uniform(0.0, 1000.0);
        t.add(x);
        seen.insert(x);
    }
    for (double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0})
        EXPECT_TRUE(seen.count(t.percentile(q)))
            << "q=" << q << " fabricated " << t.percentile(q);
}

TEST(PercentileTracker, UnsortedInput)
{
    PercentileTracker t;
    for (double x : {9.0, 1.0, 5.0, 3.0, 7.0})
        t.add(x);
    EXPECT_DOUBLE_EQ(t.min(), 1.0);
    EXPECT_DOUBLE_EQ(t.max(), 9.0);
    EXPECT_DOUBLE_EQ(t.percentile(0.5), 5.0);
}

TEST(PercentileTracker, SingleSample)
{
    PercentileTracker t;
    t.add(3.5);
    EXPECT_DOUBLE_EQ(t.percentile(0.95), 3.5);
}

TEST(PercentileTracker, AddAfterQueryKeepsCorrectness)
{
    PercentileTracker t;
    t.add(1.0);
    t.add(2.0);
    EXPECT_DOUBLE_EQ(t.max(), 2.0);
    t.add(10.0); // invalidates cached sort
    EXPECT_DOUBLE_EQ(t.max(), 10.0);
}

TEST(PercentileTracker, MeanIsUnaffectedByPercentileQueries)
{
    // mean() must be bitwise-stable across percentile queries: the
    // lazy sort reorders the sample buffer, and fp summation in a
    // different order can round differently. Snapshot serialisation
    // relies on query history not changing any value.
    PercentileTracker t;
    for (double x : {5.583349, 4.3259, 5.583349, 5.583349})
        t.add(x);
    const double before = t.mean();
    (void)t.percentile(0.5); // forces the sort
    EXPECT_EQ(t.mean(), before);
}

TEST(Histogram, BinningAndOutOfRangeCounters)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.99);
    h.add(-5.0); // counted as underflow, not binned
    h.add(50.0); // counted as overflow, not binned
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_DOUBLE_EQ(h.binLow(3), 3.0);
    EXPECT_DOUBLE_EQ(h.binHigh(3), 4.0);
}

TEST(Geomean, Basics)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({1.0, 0.0}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({1.0, -2.0}), 0.0);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a() == b())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanApproximation)
{
    Rng rng(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowBounds)
{
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.below(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all residues hit
}

TEST(Rng, BetweenInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.between(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= (v == -2);
        saw_hi |= (v == 2);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ForkIndependence)
{
    Rng a(5);
    Rng child = a.fork();
    // Child stream should not replay the parent stream.
    Rng b(5);
    (void)b.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (child() == b())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t({"name", "value"});
    t.row().cell("alpha").cell(1);
    t.row().cell("b").cell(12.5, 1);
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("12.5"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTable, CsvOutput)
{
    TextTable t({"a", "b"});
    t.row().cell(1).cell(2);
    EXPECT_EQ(t.renderCsv(), "a,b\n1,2\n");
}

TEST(TextTable, IntegerOverloads)
{
    TextTable t({"x"});
    t.row().cell(std::uint64_t(18446744073709551615ULL));
    EXPECT_NE(t.render().find("18446744073709551615"),
              std::string::npos);
}

TEST(FormatFixed, Precision)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatFixed(1.0, 0), "1");
}

TEST(PercentileTracker, EmptyAndResetLifecycle)
{
    PercentileTracker t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.count(), 0u);
    t.add(1.0);
    EXPECT_FALSE(t.empty());
    t.reset();
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.count(), 0u);
}

TEST(PercentileTracker, SingleSampleAllQuantiles)
{
    PercentileTracker t;
    t.add(7.25);
    EXPECT_DOUBLE_EQ(t.percentile(0.0), 7.25);
    EXPECT_DOUBLE_EQ(t.percentile(0.5), 7.25);
    EXPECT_DOUBLE_EQ(t.percentile(1.0), 7.25);
    EXPECT_DOUBLE_EQ(t.mean(), 7.25);
    EXPECT_DOUBLE_EQ(t.min(), 7.25);
    EXPECT_DOUBLE_EQ(t.max(), 7.25);
}

TEST(Histogram, EmptyHistogramHasZeroEverywhere)
{
    Histogram h(0.0, 4.0, 4);
    EXPECT_EQ(h.total(), 0u);
    for (std::size_t i = 0; i < h.bins(); ++i)
        EXPECT_EQ(h.binCount(i), 0u);
}

TEST(Histogram, SingleSampleAndReset)
{
    Histogram h(0.0, 4.0, 4);
    h.add(2.5);
    h.add(9.0);
    EXPECT_EQ(h.total(), 2u);
    EXPECT_EQ(h.binCount(2), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.binCount(2), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.underflow(), 0u);
}

TEST(Histogram, OutOfRangeCountedNotClamped)
{
    Histogram h(10.0, 20.0, 5);
    h.add(-1e9); // far below lo -> underflow
    h.add(1e9);  // far above hi -> overflow
    h.add(10.0); // exactly lo belongs to the first bin
    h.add(20.0); // exactly hi is outside the half-open range
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(4), 0u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
}

// ---- merge-vs-sequential property tests ------------------------
//
// The cluster layer folds per-shard statistics into cluster-wide
// ones with merge(); the result must be indistinguishable from
// having fed every sample into one instance sequentially.

TEST(Accumulator, MergeOfPartsEqualsSequentialFeed)
{
    Rng rng(0x51a75ULL);
    std::vector<double> samples;
    for (int i = 0; i < 257; ++i)
        samples.push_back(rng.uniform(-50.0, 150.0));

    Accumulator whole;
    for (double x : samples)
        whole.add(x);

    // Split into three uneven parts, merge back together.
    Accumulator parts[3];
    for (std::size_t i = 0; i < samples.size(); ++i)
        parts[i % 2 == 0 ? 0 : (i % 3 == 0 ? 1 : 2)].add(samples[i]);
    Accumulator merged;
    for (const Accumulator &p : parts)
        merged.merge(p);

    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.sum(), whole.sum(), 1e-9);
    EXPECT_DOUBLE_EQ(merged.min(), whole.min());
    EXPECT_DOUBLE_EQ(merged.max(), whole.max());
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(merged.variance(), whole.variance(), 1e-6);
}

TEST(Accumulator, MergeEmptySides)
{
    Accumulator filled;
    for (double x : {3.0, 1.0, 4.0})
        filled.add(x);
    Accumulator empty;

    Accumulator a = filled;
    a.merge(empty); // empty right side: no change
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 4.0);

    Accumulator b;
    b.merge(filled); // empty left side: adopt other wholesale
    EXPECT_EQ(b.count(), 3u);
    EXPECT_DOUBLE_EQ(b.min(), 1.0);
    EXPECT_DOUBLE_EQ(b.max(), 4.0);
    EXPECT_NEAR(b.variance(), filled.variance(), 1e-12);
}

TEST(PercentileTracker, MergeOfPartsEqualsSequentialFeed)
{
    Rng rng(0x9e47cULL);
    PercentileTracker whole;
    PercentileTracker left;
    PercentileTracker right;
    for (int i = 0; i < 101; ++i) {
        const double x = rng.uniform(0.0, 10.0);
        whole.add(x);
        (i % 2 == 0 ? left : right).add(x);
    }
    // Query a part first: merging must include samples regardless of
    // the lazily-sorted state of either side.
    (void)left.percentile(0.5);

    PercentileTracker merged;
    merged.merge(left);
    merged.merge(right);
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9);
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(merged.percentile(q), whole.percentile(q))
            << "q=" << q;
}

TEST(Histogram, MergeOfPartsEqualsSequentialFeed)
{
    Rng rng(0x4157ULL);
    Histogram whole(0.0, 100.0, 10);
    Histogram left(0.0, 100.0, 10);
    Histogram right(0.0, 100.0, 10);
    for (int i = 0; i < 500; ++i) {
        // Deliberately wider than the range: under/overflow counters
        // must merge exactly too.
        const double x = rng.uniform(-20.0, 140.0);
        whole.add(x);
        (i % 3 == 0 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.total(), whole.total());
    EXPECT_EQ(left.underflow(), whole.underflow());
    EXPECT_EQ(left.overflow(), whole.overflow());
    for (std::size_t b = 0; b < whole.bins(); ++b)
        EXPECT_EQ(left.binCount(b), whole.binCount(b)) << "bin " << b;
}

TEST(Logging, ThresholdFiltersLevels)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Warn);
    EXPECT_FALSE(logLevelEnabled(LogLevel::Debug));
    EXPECT_FALSE(logLevelEnabled(LogLevel::Inform));
    EXPECT_TRUE(logLevelEnabled(LogLevel::Warn));
    // panic/fatal are never filtered.
    EXPECT_TRUE(logLevelEnabled(LogLevel::Panic));
    EXPECT_TRUE(logLevelEnabled(LogLevel::Fatal));
    setLogLevel(LogLevel::Debug);
    EXPECT_TRUE(logLevelEnabled(LogLevel::Debug));
    setLogLevel(saved);
}

TEST(Logging, DebugMacroHonoursThreshold)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Warn);
    int evals = 0;
    auto expensive = [&] {
        ++evals;
        return "detail";
    };
    debug("never formatted: ", expensive());
    EXPECT_EQ(evals, 0); // argument evaluation skipped when filtered
    setLogLevel(LogLevel::Debug);
    debug("formatted: ", expensive());
    EXPECT_EQ(evals, 1);
    setLogLevel(saved);
}

TEST(CommonDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom ", 42), "boom 42");
}

TEST(CommonDeath, PercentileOnEmpty)
{
    PercentileTracker t;
    EXPECT_DEATH(t.percentile(0.5), "empty");
}

TEST(CommonDeath, HistogramEmptyRange)
{
    EXPECT_EXIT(Histogram(1.0, 1.0, 4),
                ::testing::ExitedWithCode(1), "empty");
}

} // namespace
} // namespace krisp
