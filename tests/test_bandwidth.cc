/**
 * @file
 * Property tests for max-min fair bandwidth allocation.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "common/random.hh"
#include "gpu/bandwidth.hh"

namespace krisp
{
namespace
{

double
sum(const std::vector<double> &v)
{
    return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(MaxMinFair, EmptyDemands)
{
    EXPECT_TRUE(maxMinFairShare({}, 100.0).empty());
}

TEST(MaxMinFair, UnderSubscribedGetsFullDemand)
{
    const auto g = maxMinFairShare({10.0, 20.0, 30.0}, 100.0);
    EXPECT_DOUBLE_EQ(g[0], 10.0);
    EXPECT_DOUBLE_EQ(g[1], 20.0);
    EXPECT_DOUBLE_EQ(g[2], 30.0);
}

TEST(MaxMinFair, EqualSplitWhenAllHungry)
{
    const auto g = maxMinFairShare({100.0, 100.0, 100.0, 100.0},
                                   100.0);
    for (double x : g)
        EXPECT_DOUBLE_EQ(x, 25.0);
}

TEST(MaxMinFair, SmallDemandSatisfiedLeftoverShared)
{
    // Classic max-min example: {10, 100, 100} over 100 ->
    // {10, 45, 45}.
    const auto g = maxMinFairShare({10.0, 100.0, 100.0}, 100.0);
    EXPECT_DOUBLE_EQ(g[0], 10.0);
    EXPECT_DOUBLE_EQ(g[1], 45.0);
    EXPECT_DOUBLE_EQ(g[2], 45.0);
}

TEST(MaxMinFair, OrderIndependent)
{
    const auto a = maxMinFairShare({10.0, 100.0, 50.0}, 100.0);
    const auto b = maxMinFairShare({100.0, 50.0, 10.0}, 100.0);
    EXPECT_DOUBLE_EQ(a[0], b[2]);
    EXPECT_DOUBLE_EQ(a[1], b[0]);
    EXPECT_DOUBLE_EQ(a[2], b[1]);
}

TEST(MaxMinFair, ZeroCapacity)
{
    const auto g = maxMinFairShare({10.0, 20.0}, 0.0);
    EXPECT_DOUBLE_EQ(g[0], 0.0);
    EXPECT_DOUBLE_EQ(g[1], 0.0);
}

TEST(MaxMinFair, ZeroDemandGetsNothing)
{
    const auto g = maxMinFairShare({0.0, 50.0}, 100.0);
    EXPECT_DOUBLE_EQ(g[0], 0.0);
    EXPECT_DOUBLE_EQ(g[1], 50.0);
}

/** Randomised invariants over many demand vectors. */
class MaxMinFairProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(MaxMinFairProperty, Invariants)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t n = 1 + rng.below(8);
        const double cap = rng.uniform(1.0, 2000.0);
        std::vector<double> demands(n);
        for (auto &d : demands)
            d = rng.uniform(0.0, 500.0);

        const auto grants = maxMinFairShare(demands, cap);
        ASSERT_EQ(grants.size(), n);
        double granted = 0;
        for (std::size_t i = 0; i < n; ++i) {
            // Never exceed the demand, never negative.
            EXPECT_LE(grants[i], demands[i] + 1e-9);
            EXPECT_GE(grants[i], -1e-9);
            granted += grants[i];
        }
        // Capacity respected.
        EXPECT_LE(granted, cap + 1e-6);
        // Work-conserving: if total demand <= cap, everyone is
        // satisfied; otherwise the capacity is fully used.
        const double total = sum(demands);
        if (total <= cap) {
            EXPECT_NEAR(granted, total, 1e-6);
        } else {
            EXPECT_NEAR(granted, cap, 1e-6);
        }
        // Max-min fairness: an unsatisfied claimant's grant is >= any
        // other grant (nobody gets more while someone hungry has
        // less).
        for (std::size_t i = 0; i < n; ++i) {
            if (grants[i] < demands[i] - 1e-6) {
                for (std::size_t j = 0; j < n; ++j)
                    EXPECT_LE(grants[j], grants[i] + 1e-6);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxMinFairProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

} // namespace
} // namespace krisp
