/**
 * @file
 * Unit tests for the HSA substrate: signals, software queues and the
 * serialised ioctl service.
 */

#include <gtest/gtest.h>

#include <vector>

#include "hsa/ioctl_service.hh"
#include "hsa/queue.hh"
#include "hsa/signal.hh"
#include "kern/kernel_builder.hh"

namespace krisp
{
namespace
{

const ArchParams arch = ArchParams::mi50();

KernelDescPtr
someKernel()
{
    return std::make_shared<const KernelDescriptor>(
        makeElementwise(arch, 1024));
}

TEST(HsaSignal, SubtractWakesAtZero)
{
    auto sig = HsaSignal::create(2);
    int fired = 0;
    sig->waitZero([&] { ++fired; });
    sig->subtract(1);
    EXPECT_EQ(fired, 0);
    sig->subtract(1);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sig->value(), 0);
}

TEST(HsaSignal, ImmediateFireWhenAlreadyZero)
{
    auto sig = HsaSignal::create(0);
    int fired = 0;
    sig->waitZero([&] { ++fired; });
    EXPECT_EQ(fired, 1);
}

TEST(HsaSignal, MultipleWaiters)
{
    auto sig = HsaSignal::create(1);
    int fired = 0;
    for (int i = 0; i < 5; ++i)
        sig->waitZero([&] { ++fired; });
    EXPECT_EQ(sig->waiterCount(), 5u);
    sig->subtract(1);
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(sig->waiterCount(), 0u);
}

TEST(HsaSignal, SetValue)
{
    auto sig = HsaSignal::create(10);
    int fired = 0;
    sig->waitZero([&] { ++fired; });
    sig->set(5);
    EXPECT_EQ(fired, 0);
    sig->set(-1);
    EXPECT_EQ(fired, 1);
}

TEST(HsaSignal, WaiterCanRegisterNewWaiter)
{
    auto sig = HsaSignal::create(1);
    int outer = 0, inner = 0;
    sig->waitZero([&] {
        ++outer;
        // Re-arm for a future cycle: signal is <= 0 so this fires
        // immediately.
        sig->waitZero([&] { ++inner; });
    });
    sig->subtract(1);
    EXPECT_EQ(outer, 1);
    EXPECT_EQ(inner, 1);
}

TEST(HsaSignal, NegativeOvershootStillFiresOnce)
{
    auto sig = HsaSignal::create(1);
    int fired = 0;
    sig->waitZero([&] { ++fired; });
    sig->subtract(5);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sig->value(), -4);
}

TEST(HsaQueue, PushPopFifo)
{
    HsaQueue q(0, 16, CuMask::full(arch));
    auto k = someKernel();
    q.push(AqlPacket::dispatch(k, nullptr, 0));
    q.push(AqlPacket::barrier());
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.front().type, AqlPacketType::KernelDispatch);
    q.pop();
    EXPECT_EQ(q.front().type, AqlPacketType::BarrierAnd);
    q.pop();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pushed(), 2u);
}

TEST(HsaQueue, DoorbellRingsOnPush)
{
    HsaQueue q(3, 4, CuMask::full(arch));
    int rings = 0;
    q.setDoorbell([&] { ++rings; });
    q.push(AqlPacket::barrier());
    q.push(AqlPacket::barrier());
    EXPECT_EQ(rings, 2);
}

TEST(HsaQueue, CuMaskStartsFullAndIsMutable)
{
    HsaQueue q(0, 4, CuMask::full(arch));
    EXPECT_EQ(q.cuMask().count(), 60u);
    q.setCuMask(CuMask::firstN(8));
    EXPECT_EQ(q.cuMask().count(), 8u);
}

TEST(HsaQueue, SpaceAccounting)
{
    HsaQueue q(0, 2, CuMask::full(arch));
    EXPECT_FALSE(q.full());
    q.push(AqlPacket::barrier());
    q.push(AqlPacket::barrier());
    EXPECT_TRUE(q.full());
}

TEST(HsaQueueDeath, PushToFullQueuePanics)
{
    HsaQueue q(0, 1, CuMask::full(arch));
    q.push(AqlPacket::barrier());
    EXPECT_DEATH(q.push(AqlPacket::barrier()), "full");
}

TEST(HsaQueueDeath, DispatchWithoutKernelPanics)
{
    HsaQueue q(0, 4, CuMask::full(arch));
    AqlPacket pkt;
    pkt.type = AqlPacketType::KernelDispatch;
    EXPECT_DEATH(q.push(std::move(pkt)), "without kernel");
}

TEST(HsaQueueDeath, PopEmptyPanics)
{
    HsaQueue q(0, 4, CuMask::full(arch));
    EXPECT_DEATH(q.pop(), "empty");
}

TEST(IoctlService, AppliesAfterLatency)
{
    EventQueue eq;
    IoctlService svc(eq, 1000);
    Tick applied = 0;
    svc.submit([&] { applied = eq.now(); });
    eq.run();
    EXPECT_EQ(applied, 1000u);
    EXPECT_EQ(svc.completed(), 1u);
}

TEST(IoctlService, SerialisesConcurrentRequests)
{
    // The paper observes the ROCm runtime serialises CU-mask ioctls
    // across queues (Sec. V-B); back-to-back requests each pay the
    // full service latency in turn.
    EventQueue eq;
    IoctlService svc(eq, 500);
    std::vector<Tick> applied;
    for (int i = 0; i < 4; ++i)
        svc.submit([&] { applied.push_back(eq.now()); });
    EXPECT_EQ(svc.backlog(), 3u); // one in service
    eq.run();
    ASSERT_EQ(applied.size(), 4u);
    EXPECT_EQ(applied[0], 500u);
    EXPECT_EQ(applied[1], 1000u);
    EXPECT_EQ(applied[2], 1500u);
    EXPECT_EQ(applied[3], 2000u);
}

TEST(IoctlService, RequestsFromWithinCallbacks)
{
    EventQueue eq;
    IoctlService svc(eq, 100);
    Tick second = 0;
    svc.submit([&] {
        svc.submit([&] { second = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(second, 200u);
}

TEST(IoctlService, IdleThenBusyAgain)
{
    EventQueue eq;
    IoctlService svc(eq, 100);
    svc.submit([] {});
    eq.run();
    EXPECT_FALSE(svc.busy());
    Tick t = 0;
    svc.submit([&] { t = eq.now(); });
    eq.run();
    EXPECT_EQ(t, 200u); // 100 (first) + 100 after re-submit at t=100
}

} // namespace
} // namespace krisp
