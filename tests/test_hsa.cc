/**
 * @file
 * Unit tests for the HSA substrate: signals, software queues and the
 * serialised ioctl service.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/random.hh"
#include "gpu/gpu_device.hh"
#include "hsa/ioctl_service.hh"
#include "hsa/queue.hh"
#include "hsa/signal.hh"
#include "kern/kernel_builder.hh"

namespace krisp
{
namespace
{

const ArchParams arch = ArchParams::mi50();

KernelDescPtr
someKernel()
{
    return std::make_shared<const KernelDescriptor>(
        makeElementwise(arch, 1024));
}

TEST(HsaSignal, SubtractWakesAtZero)
{
    auto sig = HsaSignal::create(2);
    int fired = 0;
    sig->waitZero([&] { ++fired; });
    sig->subtract(1);
    EXPECT_EQ(fired, 0);
    sig->subtract(1);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sig->value(), 0);
}

TEST(HsaSignal, ImmediateFireWhenAlreadyZero)
{
    auto sig = HsaSignal::create(0);
    int fired = 0;
    sig->waitZero([&] { ++fired; });
    EXPECT_EQ(fired, 1);
}

TEST(HsaSignal, MultipleWaiters)
{
    auto sig = HsaSignal::create(1);
    int fired = 0;
    for (int i = 0; i < 5; ++i)
        sig->waitZero([&] { ++fired; });
    EXPECT_EQ(sig->waiterCount(), 5u);
    sig->subtract(1);
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(sig->waiterCount(), 0u);
}

TEST(HsaSignal, SetValue)
{
    auto sig = HsaSignal::create(10);
    int fired = 0;
    sig->waitZero([&] { ++fired; });
    sig->set(5);
    EXPECT_EQ(fired, 0);
    sig->set(-1);
    EXPECT_EQ(fired, 1);
}

TEST(HsaSignal, WaiterCanRegisterNewWaiter)
{
    auto sig = HsaSignal::create(1);
    int outer = 0, inner = 0;
    sig->waitZero([&] {
        ++outer;
        // Re-arm for a future cycle: signal is <= 0 so this fires
        // immediately.
        sig->waitZero([&] { ++inner; });
    });
    sig->subtract(1);
    EXPECT_EQ(outer, 1);
    EXPECT_EQ(inner, 1);
}

TEST(HsaSignal, NegativeOvershootStillFiresOnce)
{
    auto sig = HsaSignal::create(1);
    int fired = 0;
    sig->waitZero([&] { ++fired; });
    sig->subtract(5);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sig->value(), -4);
}

TEST(HsaQueue, PushPopFifo)
{
    HsaQueue q(0, 16, CuMask::full(arch));
    auto k = someKernel();
    q.push(AqlPacket::dispatch(k, nullptr, 0));
    q.push(AqlPacket::barrier());
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.front().type, AqlPacketType::KernelDispatch);
    q.pop();
    EXPECT_EQ(q.front().type, AqlPacketType::BarrierAnd);
    q.pop();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pushed(), 2u);
}

TEST(HsaQueue, DoorbellRingsOnPush)
{
    HsaQueue q(3, 4, CuMask::full(arch));
    int rings = 0;
    q.setDoorbell([&] { ++rings; });
    q.push(AqlPacket::barrier());
    q.push(AqlPacket::barrier());
    EXPECT_EQ(rings, 2);
}

TEST(HsaQueue, CuMaskStartsFullAndIsMutable)
{
    HsaQueue q(0, 4, CuMask::full(arch));
    EXPECT_EQ(q.cuMask().count(), 60u);
    q.setCuMask(CuMask::firstN(8));
    EXPECT_EQ(q.cuMask().count(), 8u);
}

TEST(HsaQueue, SpaceAccounting)
{
    HsaQueue q(0, 2, CuMask::full(arch));
    EXPECT_FALSE(q.full());
    q.push(AqlPacket::barrier());
    q.push(AqlPacket::barrier());
    EXPECT_TRUE(q.full());
}

TEST(HsaQueueDeath, PushToFullQueuePanics)
{
    HsaQueue q(0, 1, CuMask::full(arch));
    q.push(AqlPacket::barrier());
    EXPECT_DEATH(q.push(AqlPacket::barrier()), "full");
}

TEST(HsaQueueDeath, DispatchWithoutKernelPanics)
{
    HsaQueue q(0, 4, CuMask::full(arch));
    AqlPacket pkt;
    pkt.type = AqlPacketType::KernelDispatch;
    EXPECT_DEATH(q.push(std::move(pkt)), "without kernel");
}

TEST(HsaQueueDeath, PopEmptyPanics)
{
    HsaQueue q(0, 4, CuMask::full(arch));
    EXPECT_DEATH(q.pop(), "empty");
}

/**
 * Randomized ring-wraparound stress: thousands of packets through a
 * deliberately tiny AQL ring so the write/read pointers wrap dozens
 * of times. A seeded mix of kernel-dispatch and barrier-AND packets
 * (random barrier bits, random dependency signals on earlier kernels)
 * is fed with back-pressure (push panics on a full ring, so the
 * feeder refills from packet completions). Checked invariants:
 *
 *  - FIFO: barrier-AND packets complete at pop time, so their
 *    completion order must be their push order; a packet with the
 *    barrier bit set may only complete after every earlier packet.
 *  - Barrier-AND semantics: a barrier's dependency kernels have all
 *    completed by the time the barrier completes.
 *  - Signal accounting: every per-kernel completion signal reaches
 *    zero, and scheduled == completed + failed at the device.
 */
TEST(HsaQueueStress, RandomizedWraparound)
{
    EventQueue eq;
    GpuConfig cfg = GpuConfig::mi50();
    cfg.queueCapacity = 64; // tiny ring: ~3000 packets wrap it ~47x
    GpuDevice dev(eq, cfg);
    HsaQueue &q = dev.createQueue();
    Rng rng(0xA11CE5ED);

    constexpr unsigned kTotal = 3000;
    const auto kern = someKernel();

    unsigned pushed = 0;
    unsigned kernels = 0;
    unsigned barriers = 0;
    std::vector<bool> done(kTotal, false);
    // Per-kernel completion signal (null slots for barriers).
    std::vector<HsaSignalPtr> ksig(kTotal);
    std::vector<std::uint64_t> barrier_done_order;
    unsigned fifo_violations = 0;
    unsigned dep_violations = 0;
    // Lazily-advanced cursor: first tag not yet completed. Makes the
    // "all earlier packets done" check O(total), not O(total^2).
    std::size_t first_pending = 0;

    std::function<void()> feed = [&] {
        while (pushed < kTotal && !q.full()) {
            const std::uint64_t tag = pushed;
            const bool bbit = rng.chance(0.5);
            AqlPacket pkt;
            std::array<std::uint64_t, 2> deps{};
            unsigned ndeps = 0;
            if (kernels == 0 || rng.chance(0.8)) {
                ksig[tag] = HsaSignal::create(1);
                pkt = AqlPacket::dispatch(kern, ksig[tag], 0, bbit);
                ++kernels;
            } else {
                // Depend on up to two random earlier kernels. They
                // sit ahead of this packet in the ring, so the waits
                // cannot deadlock.
                std::array<HsaSignalPtr, aqlBarrierDeps> sigs{};
                for (unsigned d = 0; d < 2; ++d) {
                    const auto pick = rng.below(tag);
                    if (ksig[pick] == nullptr)
                        continue; // picked a barrier; skip
                    sigs[ndeps] = ksig[pick];
                    deps[ndeps++] = pick;
                }
                pkt = AqlPacket::barrier(sigs, nullptr, bbit);
                ++barriers;
            }
            pkt.tag = tag;
            const bool is_barrier =
                pkt.type == AqlPacketType::BarrierAnd;
            pkt.onComplete = [&, tag, bbit, is_barrier, deps,
                              ndeps] {
                done[tag] = true;
                if (is_barrier)
                    barrier_done_order.push_back(tag);
                if (bbit) {
                    while (first_pending < kTotal &&
                           done[first_pending])
                        ++first_pending;
                    if (first_pending <= tag)
                        ++fifo_violations;
                }
                // The architected completion indicator is the
                // signal: a retiring kernel decrements it before its
                // host hook runs, so check the signal, not `done`.
                for (unsigned d = 0; d < ndeps; ++d)
                    if (ksig[deps[d]]->value() > 0)
                        ++dep_violations;
                feed();
            };
            q.push(std::move(pkt));
            ++pushed;
        }
    };
    feed();
    eq.run();

    EXPECT_EQ(pushed, kTotal);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pushed(), kTotal);
    EXPECT_EQ(q.popped(), kTotal);
    EXPECT_GT(q.pushed(), 40u * cfg.queueCapacity); // really wrapped
    EXPECT_EQ(fifo_violations, 0u);
    EXPECT_EQ(dep_violations, 0u);

    // Every packet completed; barriers completed in push order.
    for (unsigned i = 0; i < kTotal; ++i)
        EXPECT_TRUE(done[i]) << "packet " << i << " never completed";
    ASSERT_EQ(barrier_done_order.size(), barriers);
    EXPECT_TRUE(std::is_sorted(barrier_done_order.begin(),
                               barrier_done_order.end()));

    // Signal accounting: scheduled == completed + failed.
    const auto &st = dev.stats();
    EXPECT_EQ(st.kernelsDispatched, kernels);
    EXPECT_EQ(st.kernelsDispatched,
              st.kernelsCompleted + st.watchdogKills);
    EXPECT_EQ(st.watchdogKills, 0u); // no fault plan armed
    EXPECT_EQ(st.barriersProcessed, barriers);
    EXPECT_EQ(st.packetsProcessed, kTotal);
    for (unsigned i = 0; i < kTotal; ++i) {
        if (ksig[i] != nullptr) {
            EXPECT_EQ(ksig[i]->value(), 0) << "kernel " << i;
        }
    }
}

TEST(IoctlService, AppliesAfterLatency)
{
    EventQueue eq;
    IoctlService svc(eq, 1000);
    Tick applied = 0;
    svc.submit([&] { applied = eq.now(); });
    eq.run();
    EXPECT_EQ(applied, 1000u);
    EXPECT_EQ(svc.completed(), 1u);
}

TEST(IoctlService, SerialisesConcurrentRequests)
{
    // The paper observes the ROCm runtime serialises CU-mask ioctls
    // across queues (Sec. V-B); back-to-back requests each pay the
    // full service latency in turn.
    EventQueue eq;
    IoctlService svc(eq, 500);
    std::vector<Tick> applied;
    for (int i = 0; i < 4; ++i)
        svc.submit([&] { applied.push_back(eq.now()); });
    EXPECT_EQ(svc.backlog(), 3u); // one in service
    eq.run();
    ASSERT_EQ(applied.size(), 4u);
    EXPECT_EQ(applied[0], 500u);
    EXPECT_EQ(applied[1], 1000u);
    EXPECT_EQ(applied[2], 1500u);
    EXPECT_EQ(applied[3], 2000u);
}

TEST(IoctlService, RequestsFromWithinCallbacks)
{
    EventQueue eq;
    IoctlService svc(eq, 100);
    Tick second = 0;
    svc.submit([&] {
        svc.submit([&] { second = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(second, 200u);
}

TEST(IoctlService, IdleThenBusyAgain)
{
    EventQueue eq;
    IoctlService svc(eq, 100);
    svc.submit([] {});
    eq.run();
    EXPECT_FALSE(svc.busy());
    Tick t = 0;
    svc.submit([&] { t = eq.now(); });
    eq.run();
    EXPECT_EQ(t, 200u); // 100 (first) + 100 after re-submit at t=100
}

} // namespace
} // namespace krisp
