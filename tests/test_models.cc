/**
 * @file
 * Tests of the workload zoo: kernel counts match the paper's Table
 * III, batch scaling behaves, caching is stable.
 */

#include <gtest/gtest.h>

#include <set>

#include "models/model_zoo.hh"

namespace krisp
{
namespace
{

const ArchParams arch = ArchParams::mi50();

TEST(ModelZoo, EightWorkloads)
{
    EXPECT_EQ(ModelZoo::workloads().size(), 8u);
}

TEST(ModelZoo, InfoLookup)
{
    const WorkloadInfo &info = ModelZoo::info("albert");
    EXPECT_EQ(info.paperKernelCount, 304u);
    EXPECT_EQ(info.paperRightSizeCus, 12u);
    EXPECT_TRUE(ModelZoo::isModel("vgg19"));
    EXPECT_FALSE(ModelZoo::isModel("gpt4"));
}

TEST(ModelZoo, UnknownModelIsFatal)
{
    ModelZoo zoo(arch);
    EXPECT_EXIT(zoo.kernels("nope", 32),
                ::testing::ExitedWithCode(1), "unknown model");
}

TEST(ModelZoo, CacheReturnsSameSequence)
{
    ModelZoo zoo(arch);
    const auto &a = zoo.kernels("alexnet", 32);
    const auto &b = zoo.kernels("alexnet", 32);
    EXPECT_EQ(&a, &b);
    const auto &c = zoo.kernels("alexnet", 16);
    EXPECT_NE(&a, &c);
}

/** Per-model Table III parameterised checks. */
class ZooModelTest : public ::testing::TestWithParam<WorkloadInfo>
{
  protected:
    ModelZoo zoo{arch};
};

TEST_P(ZooModelTest, KernelCountMatchesPaper)
{
    const auto &info = GetParam();
    EXPECT_EQ(zoo.kernels(info.name, 32).size(),
              info.paperKernelCount);
}

TEST_P(ZooModelTest, CountIndependentOfBatch)
{
    const auto &info = GetParam();
    for (unsigned batch : {1u, 8u, 16u, 32u}) {
        EXPECT_EQ(zoo.kernels(info.name, batch).size(),
                  info.paperKernelCount)
            << info.name << " at batch " << batch;
    }
}

TEST_P(ZooModelTest, DescriptorsWellFormed)
{
    const auto &info = GetParam();
    for (const auto &k : zoo.kernels(info.name, 32)) {
        ASSERT_TRUE(k);
        EXPECT_FALSE(k->name.empty());
        EXPECT_GT(k->numWorkgroups, 0u);
        EXPECT_GT(k->wgThreads, 0u);
        EXPECT_LE(k->wgThreads, 1024u);
        EXPECT_GT(k->wgDurationNs, 0.0);
        EXPECT_GE(k->bytes, 0.0);
        EXPECT_GE(k->saturationWgsPerCu, 1u);
    }
}

TEST_P(ZooModelTest, WorkScalesWithBatch)
{
    const auto &info = GetParam();
    auto total_work = [&](unsigned batch) {
        double w = 0;
        for (const auto &k : zoo.kernels(info.name, batch))
            w += k->numWorkgroups * k->wgDurationNs + k->bytes / 64.0;
        return w;
    };
    // Doubling the batch should substantially increase total work
    // (not necessarily exactly 2x due to tile quantisation).
    EXPECT_GT(total_work(32), 1.5 * total_work(8));
}

TEST_P(ZooModelTest, UsesMultipleKernelClasses)
{
    const auto &info = GetParam();
    std::set<KernelClass> classes;
    for (const auto &k : zoo.kernels(info.name, 32))
        classes.insert(k->klass);
    EXPECT_GE(classes.size(), 4u) << info.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ZooModelTest,
    ::testing::ValuesIn(ModelZoo::workloads()),
    [](const ::testing::TestParamInfo<WorkloadInfo> &info) {
        return info.param.name;
    });

TEST(ModelZoo, AlbertIsTransformerShaped)
{
    ModelZoo zoo(arch);
    unsigned gemms = 0, softmaxes = 0;
    for (const auto &k : zoo.kernels("albert", 32)) {
        if (k->klass == KernelClass::Gemm)
            ++gemms;
        if (k->klass == KernelClass::Softmax)
            ++softmaxes;
    }
    // 12 layers x 6 GEMMs + embeddings/pooler/classifier.
    EXPECT_GE(gemms, 75u);
    EXPECT_EQ(softmaxes, 13u); // 12 attention + 1 classifier
}

TEST(ModelZoo, VggIsConvHeavy)
{
    ModelZoo zoo(arch);
    unsigned convs = 0;
    for (const auto &k : zoo.kernels("vgg19", 32)) {
        if (k->klass == KernelClass::Sp3AsmConv ||
            k->klass == KernelClass::WinogradConv) {
            ++convs;
        }
    }
    EXPECT_EQ(convs, 16u);
}

TEST(ModelZoo, ShufflenetUsesDepthwise)
{
    ModelZoo zoo(arch);
    unsigned dw = 0;
    for (const auto &k : zoo.kernels("shufflenet", 32))
        if (k->klass == KernelClass::DepthwiseConv)
            ++dw;
    // 13 basic + 2x3 downsample depthwise convs.
    EXPECT_EQ(dw, 19u);
}

TEST(ModelZoo, ZeroBatchIsFatal)
{
    ModelZoo zoo(arch);
    EXPECT_EXIT(zoo.kernels("albert", 0),
                ::testing::ExitedWithCode(1), "non-zero");
}

} // namespace
} // namespace krisp
