/**
 * @file
 * Unit tests for the progress-based processor-sharing scheduler.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/fluid_scheduler.hh"

namespace krisp
{
namespace
{

/** Harness giving every active job the same externally set rate. */
struct Fixture
{
    EventQueue eq;
    double rate = 1.0;
    std::vector<std::pair<JobId, Tick>> completions;
    FluidScheduler fs{
        eq,
        [this](FluidScheduler &f) {
            for (const JobId id : f.activeJobs())
                f.setRate(id, rate);
        },
        [this](JobId id) { completions.emplace_back(id, eq.now()); }};
};

TEST(FluidScheduler, SingleJobCompletesOnTime)
{
    Fixture fx;
    fx.rate = 0.5; // work units per tick
    fx.fs.add(100.0);
    fx.eq.run();
    ASSERT_EQ(fx.completions.size(), 1u);
    EXPECT_EQ(fx.completions[0].second, 200u);
}

TEST(FluidScheduler, ZeroWorkJobCompletesImmediately)
{
    Fixture fx;
    fx.fs.add(0.0);
    EXPECT_EQ(fx.completions.size(), 1u);
    EXPECT_EQ(fx.fs.activeCount(), 0u);
}

TEST(FluidScheduler, TwoJobsIndependentRates)
{
    EventQueue eq;
    std::map<JobId, double> rates;
    std::vector<std::pair<JobId, Tick>> done;
    FluidScheduler fs(
        eq,
        [&](FluidScheduler &f) {
            for (const JobId id : f.activeJobs())
                f.setRate(id, rates.at(id));
        },
        [&](JobId id) { done.emplace_back(id, eq.now()); });

    const JobId slow = [&] {
        // Rates must exist before the rate callback runs; stage them
        // pessimistically and fix up after add() returns.
        rates[1] = 1.0;
        rates[2] = 1.0;
        return fs.add(1000.0);
    }();
    const JobId fast = fs.add(100.0);
    rates[slow] = 1.0;
    rates[fast] = 10.0;
    fs.refresh();

    eq.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0].first, fast);
    EXPECT_EQ(done[0].second, 10u);
    EXPECT_EQ(done[1].first, slow);
    EXPECT_EQ(done[1].second, 1000u);
}

TEST(FluidScheduler, RateChangeMidFlight)
{
    Fixture fx;
    fx.rate = 1.0;
    fx.fs.add(100.0);
    // Halve the rate after 50 ticks of progress.
    fx.eq.schedule(50, [&] {
        fx.rate = 0.5;
        fx.fs.refresh();
    });
    fx.eq.run();
    ASSERT_EQ(fx.completions.size(), 1u);
    // 50 units at rate 1 + 50 units at rate 0.5 -> 50 + 100 = 150.
    EXPECT_EQ(fx.completions[0].second, 150u);
}

TEST(FluidScheduler, ProcessorSharingTwoEqualJobs)
{
    EventQueue eq;
    std::vector<Tick> done;
    FluidScheduler fs(
        eq,
        [](FluidScheduler &f) {
            // Capacity 1 split evenly among active jobs.
            const auto jobs = f.activeJobs();
            for (const JobId id : jobs)
                f.setRate(id, 1.0 / jobs.size());
        },
        [&](JobId) { done.push_back(eq.now()); });
    fs.add(100.0);
    fs.add(100.0);
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    // Both share capacity until the first finishes; with equal work
    // both finish at t=200.
    EXPECT_EQ(done[0], 200u);
    EXPECT_EQ(done[1], 200u);
}

TEST(FluidScheduler, SecondJobSpeedsUpAfterFirstCompletes)
{
    EventQueue eq;
    std::vector<Tick> done;
    FluidScheduler fs(
        eq,
        [](FluidScheduler &f) {
            const auto jobs = f.activeJobs();
            for (const JobId id : jobs)
                f.setRate(id, 1.0 / jobs.size());
        },
        [&](JobId) { done.push_back(eq.now()); });
    fs.add(50.0);
    fs.add(150.0);
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    // Shared until t=100 (50 each done), then the big one runs alone:
    // 100 remaining at rate 1 -> t=200.
    EXPECT_EQ(done[0], 100u);
    EXPECT_EQ(done[1], 200u);
}

TEST(FluidScheduler, CancelRemovesJob)
{
    Fixture fx;
    const JobId id = fx.fs.add(1000.0);
    fx.fs.cancel(id);
    EXPECT_FALSE(fx.fs.active(id));
    fx.eq.run();
    EXPECT_TRUE(fx.completions.empty());
}

TEST(FluidScheduler, RemainingTracksProgress)
{
    Fixture fx;
    fx.rate = 1.0;
    const JobId id = fx.fs.add(100.0);
    fx.eq.schedule(30, [&] {
        EXPECT_NEAR(fx.fs.remaining(id), 70.0, 1e-6);
    });
    fx.eq.run(30);
    EXPECT_NEAR(fx.fs.remaining(id), 70.0, 1e-6);
    fx.eq.run();
}

TEST(FluidScheduler, ZeroRateJobNeverCompletes)
{
    Fixture fx;
    fx.rate = 0.0;
    fx.fs.add(10.0);
    fx.eq.run(1'000'000);
    EXPECT_TRUE(fx.completions.empty());
    EXPECT_EQ(fx.fs.activeCount(), 1u);
}

TEST(FluidScheduler, CompletionCallbackCanAddJob)
{
    EventQueue eq;
    int completed = 0;
    FluidScheduler *fsp = nullptr;
    FluidScheduler fs(
        eq,
        [](FluidScheduler &f) {
            for (const JobId id : f.activeJobs())
                f.setRate(id, 1.0);
        },
        [&](JobId) {
            if (++completed == 1)
                fsp->add(50.0); // chain a follow-up job
        });
    fsp = &fs;
    fs.add(100.0);
    eq.run();
    EXPECT_EQ(completed, 2);
    EXPECT_EQ(eq.now(), 150u);
}

TEST(FluidScheduler, ManyJobsAllComplete)
{
    Fixture fx;
    fx.rate = 2.0;
    for (int i = 1; i <= 50; ++i)
        fx.fs.add(i * 10.0);
    fx.eq.run();
    EXPECT_EQ(fx.completions.size(), 50u);
    EXPECT_EQ(fx.fs.activeCount(), 0u);
    // Latest completion: 500 work at rate 2 -> t=250.
    EXPECT_EQ(fx.completions.back().second, 250u);
}

TEST(FluidScheduler, TinyRateDoesNotOverflowTick)
{
    // A huge backlog draining at a tiny rate makes the projected
    // completion delay overflow Tick if cast unchecked; the scheduler
    // must clamp to the representable horizon instead of UB. The job
    // is still live and cancellable afterwards.
    Fixture fx;
    // soonest = 1e19 / 1e-6 = 1e25 ticks: finite, far beyond the
    // ~1.8e19 maxTick horizon.
    fx.rate = 1e-6;
    const JobId id = fx.fs.add(1e19);
    EXPECT_TRUE(fx.fs.active(id));
    // A completion event exists, scheduled at a valid (clamped) tick.
    EXPECT_GE(fx.eq.pendingCount(), 1u);
    fx.fs.cancel(id);
    fx.eq.run(1000);
    EXPECT_TRUE(fx.completions.empty());
}

TEST(FluidScheduler, ActiveJobsAppendMatchesCopy)
{
    Fixture fx;
    fx.fs.add(100.0);
    fx.fs.add(200.0);
    fx.fs.add(300.0);
    std::vector<JobId> appended{999}; // pre-existing content survives
    fx.fs.appendActiveJobs(appended);
    const std::vector<JobId> copied = fx.fs.activeJobs();
    ASSERT_EQ(appended.size(), copied.size() + 1);
    for (std::size_t i = 0; i < copied.size(); ++i)
        EXPECT_EQ(appended[i + 1], copied[i]);
}

TEST(FluidSchedulerDeath, NegativeWorkPanics)
{
    Fixture fx;
    EXPECT_DEATH(fx.fs.add(-1.0), "negative work");
}

TEST(FluidSchedulerDeath, SetRateOnInactiveJobPanics)
{
    Fixture fx;
    EXPECT_DEATH(fx.fs.setRate(999, 1.0), "inactive");
}

} // namespace
} // namespace krisp
