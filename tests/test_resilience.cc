/**
 * @file
 * Tests for the cluster resilience layer: admission token buckets,
 * the brownout ladder, retry budgets, circuit breakers and the hedge
 * delay estimator as pure decision units; then shard crash / warm
 * restart, request conservation, hedging cancellation and the
 * availability gains end-to-end through ClusterServer.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster_server.hh"
#include "harness/worker_pool.hh"

namespace krisp
{
namespace
{

ResilienceConfig
enabledConfig()
{
    ResilienceConfig cfg;
    cfg.enabled = true;
    return cfg;
}

// ---- admission ----------------------------------------------------

TEST(Resilience, DisabledLayerAdmitsEverythingAndNeverRetries)
{
    ResilienceConfig cfg; // enabled = false
    cfg.admission[0].ratePerSec = 1.0;
    cfg.admission[0].burst = 1.0;
    ClusterResilience res(cfg, 2);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(res.admit(PriorityClass::Interactive, 0));
    EXPECT_FALSE(res.tryChargeRetry());
    res.noteShardFailure(0, 0);
    EXPECT_FALSE(res.breakerOpen(0, 1));
}

TEST(Resilience, TokenBucketAdmitsBurstThenShedsThenRefills)
{
    ResilienceConfig cfg = enabledConfig();
    cfg.admission[0].ratePerSec = 10.0; // one token per 100 ms
    cfg.admission[0].burst = 4.0;
    ClusterResilience res(cfg, 1);
    // The bucket starts full: the leading burst is admitted.
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(res.admit(PriorityClass::Interactive, 0)) << i;
    EXPECT_FALSE(res.admit(PriorityClass::Interactive, 0));
    // 100 ms later exactly one token has refilled.
    const Tick t1 = ticksFromMs(100.0);
    EXPECT_TRUE(res.admit(PriorityClass::Interactive, t1));
    EXPECT_FALSE(res.admit(PriorityClass::Interactive, t1));
    // Refill clamps at the burst size, not the elapsed time.
    const Tick t2 = ticksFromSec(100.0);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(res.admit(PriorityClass::Interactive, t2)) << i;
    EXPECT_FALSE(res.admit(PriorityClass::Interactive, t2));
}

TEST(Resilience, UnlimitedClassNeverSheds)
{
    ResilienceConfig cfg = enabledConfig();
    cfg.admission[1].ratePerSec = 0; // Batch unlimited
    ClusterResilience res(cfg, 1);
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(res.admit(PriorityClass::Batch, 0));
}

// ---- brownout -----------------------------------------------------

TEST(Resilience, BrownoutEscalatesWithHysteresisAndRelaxes)
{
    ResilienceConfig cfg = enabledConfig();
    cfg.brownoutHighWatermark = 10;
    cfg.brownoutLowWatermark = 2;
    cfg.brownoutSustain = 3;
    cfg.brownoutRelax = 2;
    cfg.degradedGrantCapCus = 8;
    ClusterResilience res(cfg, 1);

    // Two over-high checks are not sustained pressure yet.
    res.noteQueueDepth(50);
    res.noteQueueDepth(50);
    EXPECT_EQ(res.brownout(), BrownoutLevel::Normal);
    // A mid-band check resets the streak (hysteresis band).
    res.noteQueueDepth(5);
    res.noteQueueDepth(50);
    res.noteQueueDepth(50);
    EXPECT_EQ(res.brownout(), BrownoutLevel::Normal);
    res.noteQueueDepth(50);
    EXPECT_EQ(res.brownout(), BrownoutLevel::ShedBatch);
    EXPECT_EQ(res.grantCapCus(), 0u);
    // Batch is shed at the door; Interactive still admitted.
    EXPECT_FALSE(res.admit(PriorityClass::Batch, 0));
    EXPECT_TRUE(res.admit(PriorityClass::Interactive, 0));

    // Sustained pressure climbs the ladder one level at a time.
    for (int i = 0; i < 3; ++i)
        res.noteQueueDepth(50);
    EXPECT_EQ(res.brownout(), BrownoutLevel::DegradeGrants);
    EXPECT_EQ(res.grantCapCus(), 8u);
    for (int i = 0; i < 3; ++i)
        res.noteQueueDepth(50);
    EXPECT_EQ(res.brownout(), BrownoutLevel::ShedInteractive);
    EXPECT_FALSE(res.admit(PriorityClass::Interactive, 0));
    EXPECT_EQ(res.brownoutEnters(), 3u);

    // Relief de-escalates after brownoutRelax under-low checks.
    res.noteQueueDepth(0);
    res.noteQueueDepth(0);
    EXPECT_EQ(res.brownout(), BrownoutLevel::DegradeGrants);
    res.noteQueueDepth(0);
    res.noteQueueDepth(0);
    EXPECT_EQ(res.brownout(), BrownoutLevel::ShedBatch);
}

// ---- retry budget -------------------------------------------------

TEST(Resilience, RetryBudgetFloorsThenGrowsWithCompletions)
{
    ResilienceConfig cfg = enabledConfig();
    cfg.retryBudgetRatio = 0.5;
    cfg.retryBudgetFloor = 2;
    ClusterResilience res(cfg, 1);
    // Cold start: only the floor is available.
    EXPECT_TRUE(res.tryChargeRetry());
    EXPECT_TRUE(res.tryChargeRetry());
    EXPECT_FALSE(res.tryChargeRetry());
    // Four completions buy two more charges at ratio 0.5.
    for (int i = 0; i < 4; ++i)
        res.noteCompleted();
    EXPECT_TRUE(res.tryChargeRetry());
    EXPECT_TRUE(res.tryChargeRetry());
    EXPECT_FALSE(res.tryChargeRetry());
    EXPECT_EQ(res.retryCharges(), 4u);
}

// ---- circuit breakers ---------------------------------------------

TEST(Resilience, BreakerTripsAfterConsecutiveFailuresAndCoolsDown)
{
    ResilienceConfig cfg = enabledConfig();
    cfg.breakerFailureThreshold = 3;
    cfg.breakerCooldownNs = ticksFromMs(10.0);
    ClusterResilience res(cfg, 2);
    res.noteShardFailure(0, 0);
    res.noteShardFailure(0, 0);
    EXPECT_FALSE(res.breakerOpen(0, 0));
    // A success in between resets the consecutive count.
    res.noteShardSuccess(0);
    res.noteShardFailure(0, 0);
    res.noteShardFailure(0, 0);
    EXPECT_FALSE(res.breakerOpen(0, 0));
    res.noteShardFailure(0, 0);
    EXPECT_TRUE(res.breakerOpen(0, 1));
    EXPECT_FALSE(res.breakerOpen(1, 1)); // per-shard state
    EXPECT_EQ(res.breakerOpens(), 1u);
    // Open until the cooldown elapses, closed after.
    EXPECT_TRUE(res.breakerOpen(0, ticksFromMs(10.0) - 1));
    EXPECT_FALSE(res.breakerOpen(0, ticksFromMs(10.0)));
}

// ---- hedge delay estimator ----------------------------------------

TEST(Resilience, HedgeDelayTracksTheLatencyQuantile)
{
    ResilienceConfig cfg = enabledConfig();
    cfg.hedging = true;
    cfg.hedgeQuantile = 0.5;
    cfg.hedgeMinSamples = 32;
    cfg.hedgeMinDelayNs = 1;
    ClusterResilience res(cfg, 1);
    EXPECT_FALSE(res.hedgeReady());
    for (int i = 0; i < 32; ++i)
        res.noteLatencySample(ticksFromMs(i < 16 ? 1.0 : 9.0));
    EXPECT_TRUE(res.hedgeReady());
    // Median of a 1ms/9ms split lands on one of the two modes.
    const Tick d = res.hedgeDelayNs();
    EXPECT_GE(d, ticksFromMs(1.0));
    EXPECT_LE(d, ticksFromMs(9.0));
    // The floor guards a cold or degenerate estimator.
    ResilienceConfig floored = cfg;
    floored.hedgeMinDelayNs = ticksFromMs(50.0);
    ClusterResilience res2(floored, 1);
    for (int i = 0; i < 32; ++i)
        res2.noteLatencySample(ticksFromMs(1.0));
    EXPECT_EQ(res2.hedgeDelayNs(), ticksFromMs(50.0));
}

// ---- cluster integration ------------------------------------------

ClusterConfig
chaosCluster(unsigned shards)
{
    ClusterConfig cfg;
    cfg.numShards = shards;
    cfg.routing = RoutingPolicy::LeastOutstanding;
    cfg.models = {"squeezenet", "shufflenet"};
    cfg.workersPerShard = 2;
    cfg.arrivalRatePerSec = 400.0 * shards;
    cfg.warmupNs = ticksFromMs(50);
    cfg.measureNs = ticksFromMs(400);
    cfg.requestDeadlineNs = ticksFromMs(250.0);
    cfg.batchWatchdogNs = ticksFromMs(60.0);
    cfg.interactiveFraction = 0.7;
    cfg.sloMs = 100.0;
    return cfg;
}

ResilienceConfig
servingResilience()
{
    ResilienceConfig res;
    res.enabled = true;
    res.retryBudgetRatio = 0.5;
    res.retryBudgetFloor = 64;
    res.maxAttempts = 6;
    res.breakerCooldownNs = ticksFromMs(60.0);
    res.rerouteBackoffNs = ticksFromMs(15.0);
    return res;
}

TEST(ClusterResilienceRun, ShardCrashesAndWarmRestarts)
{
    ObsContext obs;
    ClusterConfig cfg = chaosCluster(2);
    cfg.obs = &obs;
    cfg.resilience = servingResilience();
    cfg.faults.shardCrashRatePerSec = 8.0;
    cfg.faults.shardRestartNs = ticksFromMs(20.0);
    const ClusterResult r = ClusterServer(cfg).run();
    EXPECT_GT(r.resilience.crashes, 0u);
    EXPECT_EQ(r.resilience.recoveries, r.resilience.crashes);
    EXPECT_GT(r.served, 0u);
    EXPECT_EQ(r.resilience.conservationDelta(), 0);
    EXPECT_TRUE(r.allocatorsPristine);
    // Crash and restart both land in the trace for post-mortems.
    bool saw_crash = false, saw_restart = false;
    for (const TraceRecord &rec : obs.trace.records()) {
        if (rec.kind == TraceEventKind::FaultInject &&
            rec.name == "shard_crash")
            saw_crash = true;
        if (rec.kind == TraceEventKind::RecoveryAction &&
            rec.name == "shard_restart")
            saw_restart = true;
    }
    EXPECT_TRUE(saw_crash);
    EXPECT_TRUE(saw_restart);
}

TEST(ClusterResilienceRun, ConservationHoldsAcrossConfigShapes)
{
    // Every shape of run — plain, resilient, crashing, faulting,
    // hedging — must account for every injected request exactly.
    std::vector<ClusterConfig> cfgs;
    cfgs.push_back(chaosCluster(2)); // resilience off
    {
        ClusterConfig cfg = chaosCluster(2);
        cfg.resilience = servingResilience();
        cfgs.push_back(cfg);
    }
    {
        ClusterConfig cfg = chaosCluster(2);
        cfg.resilience = servingResilience();
        cfg.resilience.hedging = true;
        cfg.resilience.hedgeMinSamples = 16;
        cfg.faults = FaultPlan::uniform(0.0005);
        cfg.faults.shardCrashRatePerSec = 4.0;
        cfg.readmitGraceNs = ticksFromMs(30.0);
        cfgs.push_back(cfg);
    }
    {
        ClusterConfig cfg = chaosCluster(1);
        cfg.faults = FaultPlan::uniform(0.001);
        cfg.faults.shardCrashRatePerSec = 2.0;
        cfgs.push_back(cfg);
    }
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        const ClusterResult r = ClusterServer(cfgs[i]).run();
        const ResilienceStats &res = r.resilience;
        EXPECT_EQ(res.conservationDelta(), 0)
            << "config " << i << ": injected " << res.injected
            << " completed " << res.completed << " shed " << res.shed
            << " dropped " << res.dropped << " failed " << res.failed
            << " in flight " << res.inFlight;
        EXPECT_EQ(res.injected,
                  res.injectedByClass[0] + res.injectedByClass[1]);
    }
}

TEST(ClusterResilienceRun, RetriesLiftAvailabilityUnderChaos)
{
    ClusterConfig cfg = chaosCluster(2);
    cfg.faults = FaultPlan::uniform(0.0003);
    cfg.faults.shardCrashRatePerSec = 2.0;
    cfg.faults.shardRestartNs = ticksFromMs(40.0);
    const ClusterResult off = ClusterServer(cfg).run();

    cfg.resilience = servingResilience();
    const ClusterResult on = ClusterServer(cfg).run();

    // Same workload (class/arrival streams are independent of the
    // resilience switch): the on-run recovers lost requests.
    EXPECT_EQ(on.resilience.injected, off.resilience.injected);
    EXPECT_GT(off.resilience.failed, 0u);
    EXPECT_GT(on.resilience.retries, 0u);
    EXPECT_GT(on.availability, off.availability);
    EXPECT_LT(on.resilience.failed, off.resilience.failed);
}

TEST(ClusterResilienceRun, AdmissionShedsBatchBeforeInteractive)
{
    ClusterConfig cfg = chaosCluster(2);
    cfg.arrivalRatePerSec = 3000.0;
    cfg.resilience = servingResilience();
    // Interactive gets capacity headroom; Batch is throttled hard.
    cfg.resilience.admission[0].ratePerSec = 2500.0;
    cfg.resilience.admission[0].burst = 64;
    cfg.resilience.admission[1].ratePerSec = 100.0;
    cfg.resilience.admission[1].burst = 16;
    const ClusterResult r = ClusterServer(cfg).run();
    EXPECT_GT(r.resilience.shedByClass[1], 0u);
    // Batch is ~30% of arrivals yet carries nearly all the shed.
    EXPECT_GT(r.resilience.shedByClass[1],
              10 * r.resilience.shedByClass[0]);
    EXPECT_EQ(r.resilience.conservationDelta(), 0);
}

TEST(ClusterResilienceRun, BrownoutCapsGrantsUnderOverload)
{
    ClusterConfig cfg = chaosCluster(2);
    // Slow the shards down (kernel-slow faults) while overloading,
    // so queues build and the ladder reaches DegradeGrants.
    cfg.arrivalRatePerSec = 4000.0;
    cfg.faults.kernelSlowProb = 0.3;
    cfg.faults.kernelSlowFactor = 6.0;
    cfg.resilience = servingResilience();
    cfg.resilience.brownoutHighWatermark = 16;
    cfg.resilience.brownoutLowWatermark = 4;
    cfg.resilience.brownoutSustain = 2;
    cfg.resilience.brownoutCheckNs = ticksFromMs(5.0);
    cfg.resilience.degradedGrantCapCus = 8;
    const ClusterResult r = ClusterServer(cfg).run();
    EXPECT_GT(r.resilience.brownoutEnters, 1u);
    EXPECT_GT(r.resilience.cappedGrants, 0u);
    EXPECT_EQ(r.resilience.conservationDelta(), 0);
}

TEST(ClusterResilienceRun, HedgingDuplicatesAndCancelsCleanly)
{
    ClusterConfig cfg = chaosCluster(2);
    // A fat latency tail (slow kernels) makes hedges fire; both
    // copies run to completion often enough to exercise the win and
    // lose paths.
    cfg.faults.kernelSlowProb = 0.05;
    cfg.faults.kernelSlowFactor = 10.0;
    cfg.resilience = servingResilience();
    cfg.resilience.hedging = true;
    cfg.resilience.hedgeQuantile = 0.9;
    cfg.resilience.hedgeMinSamples = 16;
    cfg.resilience.hedgeMinDelayNs = ticksFromMs(2.0);
    const ClusterResult r = ClusterServer(cfg).run();
    EXPECT_GT(r.resilience.hedges, 0u);
    EXPECT_GT(r.resilience.hedgesWon + r.resilience.hedgesLost, 0u);
    EXPECT_LE(r.resilience.hedgesWon + r.resilience.hedgesLost,
              r.resilience.hedges);
    EXPECT_EQ(r.resilience.conservationDelta(), 0);
    // The pristine-release invariant: cancelled hedges released
    // every CU grant — no resident kernels, no busy CUs at the end.
    EXPECT_TRUE(r.allocatorsPristine);
}

TEST(ClusterResilienceRun, ReadmitGraceAvoidsRedrainFlapping)
{
    // Regression: a shard re-admitted into a still-active hang storm
    // used to be re-drained almost immediately (health check fired
    // on the first post-readmit batch), inflating failovers. The
    // grace window must absorb that.
    ClusterConfig cfg = chaosCluster(2);
    cfg.faults.kernelHangProb = 0.004;
    cfg.faults.watchdogTimeoutNs = ticksFromMs(20.0);
    cfg.batchWatchdogNs = ticksFromMs(30.0);
    cfg.failoverHangThreshold = 2;
    cfg.drainNs = ticksFromMs(40.0);
    cfg.measureNs = ticksFromMs(600.0);
    cfg.readmitGraceNs = 0;
    const ClusterResult hair_trigger = ClusterServer(cfg).run();
    cfg.readmitGraceNs = ticksFromMs(80.0);
    const ClusterResult graced = ClusterServer(cfg).run();
    ASSERT_GT(hair_trigger.failovers, 0u);
    EXPECT_LT(graced.failovers, hair_trigger.failovers);
    // Grace defers draining; it must not stop the cluster serving.
    EXPECT_GT(graced.served, 0u);
}

TEST(ClusterResilienceRun, MetricsBytesIdenticalAcrossJobsUnderChaos)
{
    // The full resilience machinery (admission, retries, hedging,
    // crashes, brownout) stays on the deterministic simulated clock:
    // a chaos sweep merges to byte-identical metrics JSON whether it
    // runs sequentially or on eight harness threads.
    auto sweep = [](unsigned jobs) {
        std::vector<std::string> json(4);
        harness::WorkerPool pool(jobs);
        pool.forEachIndex(json.size(), [&](std::size_t i) {
            ObsContext obs;
            ClusterConfig cfg = chaosCluster(2);
            cfg.seed = 11 + i;
            cfg.obs = &obs;
            cfg.resilience = servingResilience();
            cfg.resilience.hedging = i % 2 == 0;
            cfg.resilience.hedgeMinSamples = 16;
            cfg.faults = FaultPlan::uniform(0.0005);
            cfg.faults.shardCrashRatePerSec = 4.0;
            cfg.readmitGraceNs = ticksFromMs(30.0);
            ClusterServer(cfg).run();
            json[i] = obs.metrics.toJson();
        });
        std::string all;
        for (const std::string &j : json)
            all += j + "\n";
        return all;
    };
    const std::string sequential = sweep(1);
    const std::string threaded = sweep(8);
    EXPECT_EQ(sequential, threaded);
}

TEST(ClusterResilienceRun, PublishesResilienceMetrics)
{
    ObsContext obs;
    ClusterConfig cfg = chaosCluster(2);
    cfg.obs = &obs;
    cfg.resilience = servingResilience();
    cfg.faults.shardCrashRatePerSec = 4.0;
    const ClusterResult r = ClusterServer(cfg).run();
    MetricsRegistry &m = obs.metrics;
    EXPECT_DOUBLE_EQ(
        m.gauge("cluster.resilience.injected").value(),
        static_cast<double>(r.resilience.injected));
    EXPECT_DOUBLE_EQ(
        m.gauge("cluster.resilience.conservation_delta").value(), 0.0);
    EXPECT_DOUBLE_EQ(m.gauge("cluster.resilience.crashes").value(),
                     static_cast<double>(r.resilience.crashes));
    EXPECT_DOUBLE_EQ(
        m.gauge("cluster.resilience.availability").value(),
        r.availability);
    const std::string json = m.toJson();
    EXPECT_NE(json.find("cluster.resilience.brownout"),
              std::string::npos);
}

// ---- fault-plan seed derivation -----------------------------------

TEST(FaultPlanStreams, ForShardIsIndependentOfShardCount)
{
    // forShard(i) is a pure function of (plan seed, i): the stream
    // shard i draws never depends on how many shards exist.
    FaultPlan plan;
    plan.seed = 0xfeedULL;
    const std::uint64_t s3 = plan.forShard(3).seed;
    // Deriving other shards first (any "cluster size") changes
    // nothing.
    for (unsigned i = 0; i < 64; ++i)
        plan.forShard(i);
    EXPECT_EQ(plan.forShard(3).seed, s3);
    // And the per-shard streams are pairwise distinct.
    for (unsigned i = 0; i < 8; ++i)
        for (unsigned j = i + 1; j < 8; ++j)
            EXPECT_NE(plan.forShard(i).seed, plan.forShard(j).seed);
}

TEST(FaultPlanStreams, ShardZeroCrashScheduleSurvivesClusterGrowth)
{
    // End-to-end: shard 0's crash times in a 1-shard cluster match
    // its crash times in a 3-shard cluster with the same plan — the
    // crash schedule depends only on (plan seed, shard index), never
    // on traffic or the shard count.
    auto crashTimes = [](unsigned shards) {
        ObsContext obs;
        ClusterConfig cfg;
        cfg.numShards = shards;
        cfg.models = {"squeezenet"};
        cfg.workersPerShard = 2;
        cfg.arrivalRatePerSec = 300.0; // same total either way
        cfg.warmupNs = ticksFromMs(50);
        cfg.measureNs = ticksFromMs(400);
        cfg.obs = &obs;
        cfg.resilience.enabled = true;
        cfg.resilience.retryBudgetFloor = 128;
        cfg.faults.shardCrashRatePerSec = 6.0;
        cfg.faults.shardRestartNs = ticksFromMs(10.0);
        ClusterServer(cfg).run();
        std::vector<Tick> times;
        for (const TraceRecord &rec : obs.trace.records()) {
            if (rec.kind != TraceEventKind::FaultInject ||
                rec.name != "shard_crash")
                continue;
            for (const TraceArg &arg : rec.args)
                if (arg.key == "target" &&
                    arg.json.find("shard0") != std::string::npos)
                    times.push_back(rec.ts);
        }
        return times;
    };
    const std::vector<Tick> alone = crashTimes(1);
    const std::vector<Tick> crowded = crashTimes(3);
    ASSERT_FALSE(alone.empty());
    EXPECT_EQ(alone, crowded);
}

TEST(FaultPlanStreams, CrashOnlyPlanDoesNotEnableTheInjector)
{
    // shardCrash is executed by the cluster layer; a crash-only plan
    // must not force FaultInjector construction (which would perturb
    // zero-fault byte-identity on every shard).
    FaultPlan plan;
    plan.shardCrashRatePerSec = 5.0;
    EXPECT_FALSE(plan.enabled());
    plan.kernelHangProb = 0.1;
    EXPECT_TRUE(plan.enabled());
}

} // namespace
} // namespace krisp
