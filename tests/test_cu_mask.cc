/**
 * @file
 * Unit tests for the CU mask (the spatial-partition representation).
 */

#include <gtest/gtest.h>

#include "kern/cu_mask.hh"

namespace krisp
{
namespace
{

const ArchParams mi50 = ArchParams::mi50();

TEST(CuMask, EmptyByDefault)
{
    CuMask m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.count(), 0u);
    EXPECT_EQ(m.activeSeCount(mi50), 0u);
    EXPECT_EQ(m.minCusPerActiveSe(mi50), 0u);
}

TEST(CuMask, FirstN)
{
    EXPECT_EQ(CuMask::firstN(0).count(), 0u);
    EXPECT_EQ(CuMask::firstN(1).bits(), 1u);
    EXPECT_EQ(CuMask::firstN(60).count(), 60u);
    EXPECT_EQ(CuMask::firstN(64).count(), 64u);
}

TEST(CuMask, FullCoversDevice)
{
    const CuMask full = CuMask::full(mi50);
    EXPECT_EQ(full.count(), 60u);
    EXPECT_EQ(full.activeSeCount(mi50), 4u);
    EXPECT_EQ(full.minCusPerActiveSe(mi50), 15u);
    for (unsigned cu = 0; cu < 60; ++cu)
        EXPECT_TRUE(full.test(cu));
    EXPECT_FALSE(full.test(60));
}

TEST(CuMask, SetClearTest)
{
    CuMask m;
    m.set(5);
    m.set(59);
    EXPECT_TRUE(m.test(5));
    EXPECT_TRUE(m.test(59));
    EXPECT_FALSE(m.test(6));
    EXPECT_EQ(m.count(), 2u);
    m.clear(5);
    EXPECT_FALSE(m.test(5));
    EXPECT_EQ(m.count(), 1u);
}

TEST(CuMask, SeCuIndexing)
{
    CuMask m;
    m.setSeCu(mi50, 2, 3); // global CU 2*15+3 = 33
    EXPECT_TRUE(m.test(33));
    EXPECT_TRUE(m.testSeCu(mi50, 2, 3));
    EXPECT_FALSE(m.testSeCu(mi50, 2, 4));
    EXPECT_EQ(CuMask::cuIndex(mi50, 3, 14), 59u);
}

TEST(CuMask, CountInSe)
{
    CuMask m;
    m.setSeCu(mi50, 0, 0);
    m.setSeCu(mi50, 0, 14);
    m.setSeCu(mi50, 3, 7);
    EXPECT_EQ(m.countInSe(mi50, 0), 2u);
    EXPECT_EQ(m.countInSe(mi50, 1), 0u);
    EXPECT_EQ(m.countInSe(mi50, 3), 1u);
    EXPECT_EQ(m.activeSeCount(mi50), 2u);
    EXPECT_EQ(m.minCusPerActiveSe(mi50), 1u);
}

TEST(CuMask, PackedSixteenIsImbalanced)
{
    // 16 CUs packed: SE0 full (15) + one CU in SE1 — the Fig. 8
    // spike configuration.
    const CuMask m = CuMask::firstN(16);
    EXPECT_EQ(m.countInSe(mi50, 0), 15u);
    EXPECT_EQ(m.countInSe(mi50, 1), 1u);
    EXPECT_EQ(m.activeSeCount(mi50), 2u);
    EXPECT_EQ(m.minCusPerActiveSe(mi50), 1u);
}

TEST(CuMask, BitwiseOperators)
{
    const CuMask a = CuMask::firstN(10);
    CuMask b;
    b.set(5);
    b.set(20);
    EXPECT_EQ((a & b).count(), 1u);
    EXPECT_EQ((a | b).count(), 11u);
    EXPECT_TRUE((a & b).test(5));
    EXPECT_TRUE((a | b).test(20));
}

TEST(CuMask, Equality)
{
    EXPECT_EQ(CuMask::firstN(8), CuMask::ofBits(0xFF));
    EXPECT_NE(CuMask::firstN(8), CuMask::firstN(9));
}

TEST(CuMask, ToStringShowsPerSeBits)
{
    CuMask m;
    m.setSeCu(mi50, 1, 0);
    const std::string s = m.toString(mi50);
    EXPECT_NE(s.find("SE0[000000000000000]"), std::string::npos);
    EXPECT_NE(s.find("SE1[100000000000000]"), std::string::npos);
}

TEST(CuMask, NonUniformArch)
{
    ArchParams small;
    small.numSe = 2;
    small.cusPerSe = 4;
    const CuMask full = CuMask::full(small);
    EXPECT_EQ(full.count(), 8u);
    EXPECT_EQ(full.activeSeCount(small), 2u);
    CuMask m;
    m.setSeCu(small, 1, 3);
    EXPECT_TRUE(m.test(7));
}

TEST(CuMaskDeath, OutOfRange)
{
    CuMask m;
    EXPECT_DEATH(m.set(64), "out of range");
    EXPECT_DEATH(m.setSeCu(mi50, 4, 0), "out of range");
    EXPECT_DEATH(m.setSeCu(mi50, 0, 15), "out of range");
}

} // namespace
} // namespace krisp
