/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, tie-breaking,
 * cancellation, bounded runs.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace krisp
{
namespace
{

TEST(EventQueue, StartsAtZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pendingCount(), 0u);
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesAreFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleIn)
{
    EventQueue eq;
    Tick fired = 0;
    eq.schedule(100, [&] {
        eq.scheduleIn(50, [&] { fired = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(fired, 150u);
}

TEST(EventQueue, DescheduleCancels)
{
    EventQueue eq;
    bool fired = false;
    const EventId id = eq.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(eq.pending(id));
    EXPECT_TRUE(eq.deschedule(id));
    EXPECT_FALSE(eq.pending(id));
    EXPECT_FALSE(eq.deschedule(id)); // second cancel is a no-op
    eq.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(eq.pendingCount(), 0u);
}

TEST(EventQueue, CancelOneOfMany)
{
    EventQueue eq;
    int sum = 0;
    eq.schedule(1, [&] { sum += 1; });
    const EventId id = eq.schedule(2, [&] { sum += 10; });
    eq.schedule(3, [&] { sum += 100; });
    eq.deschedule(id);
    eq.run();
    EXPECT_EQ(sum, 101);
}

TEST(EventQueue, RunLimitStopsAndSetsTime)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    eq.run(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 20u);
    eq.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, StepOneAtATime)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 10)
            eq.scheduleIn(1, recurse);
    };
    eq.scheduleIn(1, recurse);
    eq.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, ClearDropsPending)
{
    EventQueue eq;
    bool fired = false;
    eq.schedule(5, [&] { fired = true; });
    eq.clear();
    eq.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(eq.pendingCount(), 0u);
}

TEST(EventQueue, PendingCountTracksLiveEvents)
{
    EventQueue eq;
    const EventId a = eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_EQ(eq.pendingCount(), 2u);
    eq.deschedule(a);
    EXPECT_EQ(eq.pendingCount(), 1u);
    eq.run();
    EXPECT_EQ(eq.pendingCount(), 0u);
}

TEST(EventQueue, CancelInsideEarlierEvent)
{
    EventQueue eq;
    bool fired = false;
    const EventId later = eq.schedule(10, [&] { fired = true; });
    eq.schedule(5, [&] { eq.deschedule(later); });
    eq.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CounterInvariantHoldsAcrossClear)
{
    // scheduled == fired + cancelled + pending at every point,
    // including across clear(): dropped events count as cancelled.
    EventQueue eq;
    auto check = [&] {
        EXPECT_EQ(eq.scheduledCount(),
                  eq.firedCount() + eq.cancelledCount() +
                      eq.pendingCount());
    };
    eq.schedule(1, [] {});
    const EventId doomed = eq.schedule(2, [] {});
    eq.schedule(3, [] {});
    check();
    eq.deschedule(doomed);
    check();
    eq.run(1);
    check();
    EXPECT_EQ(eq.firedCount(), 1u);
    eq.clear();
    check();
    EXPECT_EQ(eq.pendingCount(), 0u);
    EXPECT_EQ(eq.scheduledCount(), 3u);
    EXPECT_EQ(eq.cancelledCount(), 2u);
    // The queue stays usable and the invariant keeps holding.
    eq.scheduleIn(1, [] {});
    check();
    eq.run();
    check();
    EXPECT_EQ(eq.firedCount(), 2u);
}

TEST(EventQueue, StaleHandlesStayInvalidAfterClear)
{
    EventQueue eq;
    bool fired = false;
    const EventId old = eq.schedule(5, [&] { fired = true; });
    eq.clear();
    // The slot may be recycled; the old handle must not match it.
    const EventId fresh = eq.schedule(6, [] {});
    EXPECT_NE(old, fresh);
    EXPECT_FALSE(eq.pending(old));
    EXPECT_FALSE(eq.deschedule(old));
    eq.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelHeavyHeapStaysBounded)
{
    // Deadline pattern: every iteration schedules a far-future event
    // and immediately cancels it. Lazy deletion alone would grow the
    // heap by one entry per iteration; compaction must keep it within
    // a constant factor of the live count.
    EventQueue eq;
    const EventId keeper = eq.schedule(1'000'000'000, [] {});
    for (int i = 0; i < 100'000; ++i)
        eq.deschedule(eq.scheduleIn(1'000'000, [] {}));
    EXPECT_EQ(eq.pendingCount(), 1u);
    EXPECT_LE(eq.heapSize(), 128u);
    EXPECT_TRUE(eq.pending(keeper));
    eq.run();
    EXPECT_EQ(eq.firedCount(), 1u);
    EXPECT_EQ(eq.cancelledCount(), 100'000u);
}

TEST(EventQueue, CompactionPreservesOrderAndTies)
{
    EventQueue eq;
    std::vector<int> order;
    // Interleave survivors with a cancel storm that forces at least
    // one compaction, then check FIFO-within-tick survives it.
    for (int i = 0; i < 8; ++i)
        eq.schedule(500, [&, i] { order.push_back(i); });
    for (int i = 0; i < 5'000; ++i)
        eq.deschedule(eq.schedule(100 + i % 7, [] {}));
    for (int i = 8; i < 16; ++i)
        eq.schedule(500, [&, i] { order.push_back(i); });
    eq.run();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "past");
}

TEST(EventQueueDeath, NullCallbackPanics)
{
    EventQueue eq;
    EXPECT_DEATH(eq.schedule(1, EventQueue::Callback()), "null");
}

} // namespace
} // namespace krisp
