/**
 * @file
 * Tests of the partition-resize schemes (Fig. 2 / Table II model).
 */

#include <gtest/gtest.h>

#include "server/reconfig.hh"

namespace krisp
{
namespace
{

ReconfigExperiment
quickExperiment()
{
    ReconfigExperiment exp;
    exp.model = "squeezenet";
    exp.cusBefore = 60;
    exp.cusAfter = 20;
    exp.resizeAtNs = ticksFromSec(0.2);
    exp.horizonNs = ticksFromSec(3.0);
    // Scaled-down reconfiguration costs so every scheme's effect
    // lands inside the short test horizon (1.0 s total).
    exp.costs.processStartNs = ticksFromMs(300);
    exp.costs.partitionConfigNs = ticksFromMs(200);
    exp.costs.modelLoadNs = ticksFromMs(500);
    return exp;
}

TEST(Reconfig, SchemeNames)
{
    EXPECT_STREQ(resizeSchemeName(ResizeScheme::ProcessRestart),
                 "process-restart");
    EXPECT_STREQ(resizeSchemeName(ResizeScheme::ShadowInstance),
                 "shadow-instance");
    EXPECT_STREQ(resizeSchemeName(ResizeScheme::KernelScoped),
                 "kernel-scoped");
}

TEST(Reconfig, CostsSum)
{
    ReconfigCosts costs;
    EXPECT_EQ(costs.totalNs(), costs.processStartNs +
                                   costs.partitionConfigNs +
                                   costs.modelLoadNs);
}

TEST(Reconfig, ProcessRestartPaysFullDowntime)
{
    const auto exp = quickExperiment();
    const ReconfigResult r =
        runReconfig(exp, ResizeScheme::ProcessRestart);
    // Downtime is the reconfiguration cost (seconds).
    EXPECT_NEAR(r.downtimeMs, ticksToMs(exp.costs.totalNs()), 1.0);
    EXPECT_GT(r.timeToEffectMs, ticksToMs(exp.costs.totalNs()));
}

TEST(Reconfig, ShadowInstanceHidesDowntimeButNotLatency)
{
    const auto exp = quickExperiment();
    const ReconfigResult r =
        runReconfig(exp, ResizeScheme::ShadowInstance);
    // Hot-swap downtime is tens of microseconds.
    EXPECT_LT(r.downtimeMs, 0.2);
    // But the new size still takes ~the full reconfiguration time to
    // come into effect (epoch-granular repartitioning).
    EXPECT_GT(r.timeToEffectMs,
              0.9 * ticksToMs(exp.costs.totalNs()));
}

TEST(Reconfig, KernelScopedIsInstant)
{
    const auto exp = quickExperiment();
    const ReconfigResult r =
        runReconfig(exp, ResizeScheme::KernelScoped);
    EXPECT_DOUBLE_EQ(r.downtimeMs, 0.0);
    // Milliseconds, not seconds (Table II "Low (milliseconds)").
    EXPECT_LT(r.timeToEffectMs, 50.0);
}

TEST(Reconfig, ThroughputOrdering)
{
    const auto exp = quickExperiment();
    const auto restart =
        runReconfig(exp, ResizeScheme::ProcessRestart);
    const auto shadow =
        runReconfig(exp, ResizeScheme::ShadowInstance);
    const auto kernel =
        runReconfig(exp, ResizeScheme::KernelScoped);
    // The restart scheme loses seconds of service.
    EXPECT_LT(restart.completed, shadow.completed);
    EXPECT_LT(restart.completed, kernel.completed);
    EXPECT_GT(kernel.completed, 0u);
}

TEST(Reconfig, CompletionsRecorded)
{
    const auto exp = quickExperiment();
    const auto r = runReconfig(exp, ResizeScheme::KernelScoped);
    EXPECT_EQ(r.completionsMs.size(), r.completed);
    for (std::size_t i = 1; i < r.completionsMs.size(); ++i)
        EXPECT_GE(r.completionsMs[i], r.completionsMs[i - 1]);
}

TEST(Reconfig, GrowingThePartitionAlsoWorks)
{
    ReconfigExperiment exp = quickExperiment();
    std::swap(exp.cusBefore, exp.cusAfter); // 20 -> 60
    const auto r = runReconfig(exp, ResizeScheme::KernelScoped);
    EXPECT_GT(r.completed, 0u);
    EXPECT_LT(r.timeToEffectMs, 50.0);
}

TEST(ReconfigDeath, InvalidExperiment)
{
    ReconfigExperiment exp = quickExperiment();
    exp.cusAfter = 0;
    EXPECT_EXIT(runReconfig(exp, ResizeScheme::KernelScoped),
                ::testing::ExitedWithCode(1), "non-zero");
    exp = quickExperiment();
    exp.resizeAtNs = exp.horizonNs;
    EXPECT_EXIT(runReconfig(exp, ResizeScheme::KernelScoped),
                ::testing::ExitedWithCode(1), "horizon");
}

} // namespace
} // namespace krisp
